"""Fleet end-to-end contracts: golden single-run equivalence, sharded
== lockstep, tenant isolation, and the noisy-neighbor model."""

import numpy as np
import pytest

from repro.fleet import FleetConfig, FleetSimulation, run_fleet, run_tenant_shard
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.sweep import cell_seed, collect_fleet
from repro.verify.differential import diff_run_results, fleet_oracle
from repro.workloads import registry

ACCESSES = 60_000
CHUNK = 15_000


def small_config(**overrides):
    base = dict(total_accesses=ACCESSES, chunk_size=CHUNK, seed=1)
    base.update(overrides)
    return SimConfig(**base)


# ----------------------------------------------------------------------
# golden: 1-tenant / 2-tier fleet == single-run engine, bit for bit


@pytest.mark.parametrize("engine", ["reference", "batched"])
def test_one_tenant_two_tier_fleet_matches_single_run(engine):
    config = small_config(engine=engine)
    fleet_sim = FleetSimulation(
        FleetConfig(tenants=1, tiers=2, bench="mcf"), config
    )
    fleet_result = fleet_sim.run()

    workload = registry.build("mcf", seed=cell_seed(config.seed, "mcf"))
    single_sim = Simulation(workload, small_config(engine=engine),
                            policy="m5-hpt")
    single = single_sim.run()

    tenant = fleet_result.results[0]
    rows = diff_run_results(tenant.result, single, tolerances={})
    assert all(r.ok for r in rows), [r.field for r in rows if not r.ok]
    assert tenant.result.execution_time_s == single.execution_time_s
    assert tenant.result.migration_time_s == single.migration_time_s
    # Same frames in the same places: the fleet topology with one
    # tenant reproduces the historic address layout exactly.
    assert np.array_equal(
        fleet_sim.sims[0].memory.frame_map, single_sim.memory.frame_map
    )
    assert np.array_equal(
        fleet_sim.sims[0].memory.node_map, single_sim.memory.node_map
    )
    # And the fleet accounting is the no-interference identity.
    assert tenant.slowdown_vs_isolated == 1.0
    assert all(v == 1.0 for v in tenant.bandwidth_share.values())


def test_fleet_oracle_is_green():
    report = fleet_oracle(accesses=ACCESSES, chunk=CHUNK)
    assert report.ok, report.format()


# ----------------------------------------------------------------------
# sharded == lockstep


def test_sharded_fleet_matches_lockstep():
    fleet = FleetConfig(
        tenants=3, tiers=3, bench="mcf,roms", weights="2,1,1"
    )
    config = small_config()
    lockstep = run_fleet(fleet, config)
    sharded = collect_fleet(fleet, config, jobs=3)
    assert sharded.epochs == lockstep.epochs
    assert sharded.tenant_metrics() == lockstep.tenant_metrics()


def test_jobs_one_and_coupled_fleets_run_lockstep():
    # A bandwidth-coupled fleet cannot shard; collect_fleet must fall
    # back to lockstep and still agree with run_fleet.
    fleet = FleetConfig(tenants=2, tiers=2, bench="mcf")
    config = small_config(cxl_bandwidth_gbps=1.0)
    direct = run_fleet(fleet, config)
    via_sweep = collect_fleet(fleet, config, jobs=4)
    assert via_sweep.tenant_metrics() == direct.tenant_metrics()
    with pytest.raises(ValueError):
        run_tenant_shard(fleet, config, tenant=0)
    with pytest.raises(ValueError):
        collect_fleet(fleet, config, jobs=0)


# ----------------------------------------------------------------------
# tenant isolation


def test_tenant_seeds_derive_per_tenant_and_keep_single_run_seed():
    fleet_sim = FleetSimulation(
        FleetConfig(tenants=3, tiers=2, bench="mcf"), small_config()
    )
    seeds = fleet_sim.tenant_seeds
    assert len(set(seeds)) == 3
    # Tenant 0 reuses the single-run derivation, so existing sweep
    # seeds are unchanged by the fleet feature.
    assert seeds[0] == cell_seed(1, "mcf")
    assert seeds[1] == cell_seed(1, "mcf", tenant=1)


def test_no_frame_mapped_by_two_tenants():
    fleet_sim = FleetSimulation(
        FleetConfig(tenants=3, tiers=3, bench="mcf,roms"), small_config()
    )
    fleet_sim.run()
    # frame_map holds absolute PFNs (node base embedded), so
    # cross-tenant disjointness is a global-uniqueness check.
    frames = np.concatenate(
        [sim.memory.frame_map for sim in fleet_sim.sims]
    )
    assert len(np.unique(frames)) == len(frames)


# ----------------------------------------------------------------------
# 3-tier fleet behaviour


def test_three_tier_fleet_passes_invariants_with_chain_traffic():
    fleet = FleetConfig(tenants=3, tiers=3, bench="mcf")
    config = small_config(
        total_accesses=120_000, check_invariants=True
    )
    result = run_fleet(fleet, config)
    chain_moves = 0.0
    for t in result.results:
        assert t.result.extra.get("invariant_checks", 0.0) > 0
        assert t.result.extra.get("invariant_violations", 0.0) == 0
        chain_moves += t.chain["demoted_to_pooled"]
        chain_moves += t.chain["pulled_from_pooled"]
    assert chain_moves > 0, "demotion chain never fired"


def test_noisy_neighbor_slows_tenants_down():
    fleet = FleetConfig(tenants=2, tiers=2, bench="mcf")
    contended = run_fleet(fleet, small_config(cxl_bandwidth_gbps=0.5))
    assert any(
        t.slowdown_vs_isolated > 1.0 for t in contended.results
    ), "tight channel ceiling produced no interference"
    for t in contended.results:
        assert t.result.execution_time_s > 0.0
        assert t.slowdown_vs_isolated >= 1.0


def test_fleet_metrics_snapshot_has_tenant_labels():
    fleet = FleetConfig(tenants=2, tiers=2, bench="mcf")
    result = run_fleet(fleet, small_config(), with_metrics=True)
    assert result.metrics, "with_metrics=True produced no snapshot"
    families = {m["name"] for m in result.metrics["metrics"]}
    assert "fleet_tenant_slowdown" in families
    assert "fleet_tenant_bandwidth_share" in families
    assert "fleet_tenant_migrated_pages_total" in families


# ----------------------------------------------------------------------
# live observability: merged per-tenant snapshots, tracing, SLO rules


def test_merged_snapshot_carries_per_tenant_labels():
    from repro.obs import Observability, flatten_snapshot

    fleet = FleetConfig(tenants=2, tiers=2, bench="mcf,roms")
    fsim = FleetSimulation(
        fleet, small_config(),
        obs=Observability(metrics=True, tracing=False),
        tenant_metrics=True,
    )
    fsim.run()
    flat = flatten_snapshot(fsim.merged_snapshot())
    tenants = {
        key.split('tenant="', 1)[1].split('"', 1)[0]
        for key in flat if 'tenant="' in key
    }
    assert {"0", "1"} <= tenants
    # tenant-scope engine series exist next to the fleet-scope gauges
    assert any(key.startswith("sim_accesses_total{") for key in flat)
    assert any(
        key.startswith("fleet_tenant_slowdown{") for key in flat
    )


def test_sharded_fleet_metrics_match_lockstep():
    from repro.obs import flatten_snapshot

    fleet = FleetConfig(tenants=2, tiers=2, bench="mcf,roms")
    config = small_config()
    lockstep = run_fleet(fleet, config, with_metrics=True)
    sharded = collect_fleet(fleet, config, jobs=2, with_metrics=True)
    assert flatten_snapshot(sharded.metrics) == flatten_snapshot(
        lockstep.metrics
    )


def test_served_fleet_final_snapshot_matches_unserved():
    from repro.obs import Observability, flatten_snapshot
    from repro.obs.live import ObsServer

    fleet = FleetConfig(tenants=2, tiers=2, bench="mcf")
    config = small_config()

    def final_snapshot(serve):
        fsim = FleetSimulation(
            fleet, config,
            obs=Observability(metrics=True, tracing=False),
            tenant_metrics=True,
        )
        if serve:
            with ObsServer(fsim.merged_snapshot):
                fsim.run()
        else:
            fsim.run()
        return fsim.merged_snapshot()

    assert flatten_snapshot(final_snapshot(True)) == flatten_snapshot(
        final_snapshot(False)
    )


def test_tenant_spans_one_group_per_traced_tenant():
    from repro.obs import Observability
    from repro.obs.exporters import merged_chrome_trace

    fleet = FleetConfig(tenants=2, tiers=2, bench="mcf")
    fsim = FleetSimulation(
        fleet, small_config(),
        obs=Observability(metrics=True, tracing=False),
        tenant_tracing=True,
    )
    fsim.run()
    groups = fsim.tenant_spans()
    assert [pid for pid, _ in groups] == [0, 1]
    assert all(spans for _, spans in groups)
    trace = merged_chrome_trace(groups)
    assert {e["pid"] for e in trace["traceEvents"]} == {0, 1}
    assert any(e["name"] == "epoch" for e in trace["traceEvents"])


def test_fleet_recorder_and_watchdog_wire_up():
    from repro.obs import Observability

    fleet = FleetConfig(tenants=2, tiers=2, bench="mcf")
    config = small_config(record_series="default", slo_rules="default")
    fsim = FleetSimulation(
        fleet, config,
        obs=Observability(metrics=True, tracing=False),
        tenant_metrics=True,
    )
    fsim.run()
    assert fsim.recorder is not None
    assert fsim.recorder.rows == ACCESSES // CHUNK
    # default fleet series include the per-tenant arbitration gauges
    assert any(
        c.startswith("fleet_tenant_slowdown{")
        for c in fsim.recorder.columns()
    )
    assert fsim.watchdog is not None
    # a tiny uncontended fleet must not breach anything
    assert fsim.watchdog.breaches_total == 0
