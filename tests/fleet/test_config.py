"""FleetConfig validation and round-robin helpers."""

import pytest

from repro.sim.config import FleetConfig


def test_defaults_are_valid():
    fleet = FleetConfig()
    assert fleet.tenants == 3
    assert fleet.tiers == 3
    assert fleet.qos is True


@pytest.mark.parametrize("kwargs", [
    {"tenants": 0},
    {"tiers": 4},
    {"tiers": 1},
    {"bench": "  "},
    {"pooled_capacity_gb": 0.0, "tiers": 3},
    {"pooled_latency_ns": 0.0},
    {"chain_headroom_frac": 1.0},
    {"chain_headroom_frac": -0.1},
    {"chain_pull_budget": -1},
    {"weights": "1,0"},
    {"weights": "1,-2"},
])
def test_rejects_bad_shapes(kwargs):
    with pytest.raises(ValueError):
        FleetConfig(**kwargs)


def test_two_tier_fleet_ignores_pooled_capacity():
    # pooled_capacity_gb only constrains 3-tier fleets.
    fleet = FleetConfig(tiers=2, pooled_capacity_gb=0.0)
    assert fleet.tiers == 2


def test_bench_round_robin():
    fleet = FleetConfig(tenants=5, bench="mcf, roms ,bc")
    assert fleet.bench_list() == ["mcf", "roms", "bc", "mcf", "roms"]


def test_weights_default_equal():
    assert FleetConfig(tenants=3).weight_list() == [1.0, 1.0, 1.0]


def test_weights_round_robin():
    fleet = FleetConfig(tenants=4, weights="1, 2")
    assert fleet.weight_list() == [1.0, 2.0, 1.0, 2.0]
