"""DemotionChain unit tests: headroom demotions and pull-ups."""

import numpy as np
import pytest

from repro.fleet import DemotionChain
from repro.memory.mglru import MultiGenLru
from repro.memory.migration import MigrationEngine
from repro.memory.tiers import NodeKind, NodeSpec, TieredMemory


def make_chain(headroom_frac=0.25, pull_budget=2, logical=20):
    """8 DDR + 16 CXL + 64 pooled frames; 20 logical pages spill to
    16 on CXL and 4 on pooled."""
    nodes = [
        NodeSpec(NodeKind.DDR, 8),
        NodeSpec(NodeKind.CXL, 16),
        NodeSpec(NodeKind.CXL_POOLED, 64),
    ]
    mem = TieredMemory(num_logical_pages=logical, nodes=nodes)
    mem.allocate_spill()
    engine = MigrationEngine(mem, mglru=MultiGenLru(logical))
    chain = DemotionChain(
        mem, engine, headroom_frac=headroom_frac, pull_budget=pull_budget
    )
    return mem, engine, chain


def test_requires_pooled_tier(tiered):
    engine = MigrationEngine(tiered, mglru=MultiGenLru(32))
    with pytest.raises(ValueError):
        DemotionChain(tiered, engine)


def test_headroom_demotes_coldest_cxl_pages():
    mem, _, chain = make_chain()
    pooled = mem.node_index(NodeKind.CXL_POOLED)
    # Warm pages 0..7; pages 8..15 keep their epoch-0 stamp.
    moved = chain.run_epoch(1, np.arange(0, 8))
    assert moved == 4  # headroom = 25% of 16 CXL frames
    assert chain.stats.demoted_to_pooled == 4
    # The four coldest (oldest stamp, lowest id) sank to pooled.
    assert list(np.nonzero(mem.node_map == pooled)[0][:4]) == [8, 9, 10, 11]
    assert mem.nodes[mem.node_index(NodeKind.CXL)].free_pages == 4


def test_pull_ups_hottest_first_within_budget():
    mem, _, chain = make_chain()
    cxl = mem.node_index(NodeKind.CXL)
    pooled = mem.node_index(NodeKind.CXL_POOLED)
    chain.run_epoch(1, np.arange(0, 8))  # open CXL headroom
    # Pooled pages 16 (x3), 17 (x2), 18 (x1) are re-accessed; the
    # budget admits only the two hottest.
    hits = np.array([16, 16, 16, 17, 17, 18])
    chain.run_epoch(2, hits)
    assert chain.stats.pulled_from_pooled == 2
    assert mem.node_map[16] == cxl
    assert mem.node_map[17] == cxl
    assert mem.node_map[18] == pooled


def test_zero_pull_budget_disables_pull_ups():
    mem, _, chain = make_chain(pull_budget=0)
    pooled = mem.node_index(NodeKind.CXL_POOLED)
    chain.run_epoch(1, np.array([16, 17, 18, 19]))
    assert chain.stats.pulled_from_pooled == 0
    assert all(mem.node_map[p] == pooled for p in (16, 17, 18, 19))


def test_chain_time_charged_to_migration_engine():
    _, engine, chain = make_chain()
    moved = chain.run_epoch(1, np.arange(0, 8))
    assert moved > 0
    assert chain.stats.time_us == pytest.approx(
        engine.cost_model.cost_us(moved)
    )
    assert engine.stats.time_us == pytest.approx(chain.stats.time_us)


def test_zero_headroom_chain_is_quiet():
    mem, _, chain = make_chain(headroom_frac=0.0)
    moved = chain.run_epoch(1, np.arange(0, 8))
    assert moved == 0
    assert chain.stats.demoted_to_pooled == 0
    assert mem.nodes[mem.node_index(NodeKind.CXL)].free_pages == 0
