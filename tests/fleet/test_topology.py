"""Topology properties: partitioning and tenant PA windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import PAGE_SIZE, TENANT_PA_STRIDE
from repro.memory.tiers import CXL_BASE, CXL_POOLED_BASE, DDR_BASE
from repro.fleet import MAX_TENANTS, tenant_node_specs, weighted_partition
from repro.sim.config import FleetConfig, SimConfig


# ----------------------------------------------------------------------
# weighted_partition


@settings(max_examples=200, deadline=None)
@given(
    total=st.integers(min_value=0, max_value=10**7),
    weights=st.lists(
        st.floats(min_value=0.01, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=12,
    ),
)
def test_partition_sums_exactly(total, weights):
    shares = weighted_partition(total, weights)
    assert sum(shares) == total
    assert all(s >= 0 for s in shares)


@settings(max_examples=200, deadline=None)
@given(
    total=st.integers(min_value=0, max_value=10**7),
    weights=st.lists(
        st.floats(min_value=0.01, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=12,
    ),
)
def test_partition_within_one_unit_of_exact(total, weights):
    shares = weighted_partition(total, weights)
    wsum = sum(weights)
    for share, w in zip(shares, weights):
        exact = total * w / wsum
        assert exact - 1 < share < exact + 1


def test_equal_weights_divide_multiples_exactly():
    assert weighted_partition(9, [1.0, 1.0, 1.0]) == [3, 3, 3]
    assert weighted_partition(8, [1.0, 1.0]) == [4, 4]


def test_partition_rejects_nonpositive_weight_sum():
    with pytest.raises(ValueError):
        weighted_partition(10, [0.0, 0.0])


# ----------------------------------------------------------------------
# tenant_node_specs


def _spec_regions(config, fleet, footprint):
    """Every tenant's (start, end) PA intervals, flattened."""
    regions = []
    for t in range(fleet.tenants):
        for spec in tenant_node_specs(config, fleet, t, footprint):
            start = spec.resolved_base_pa
            regions.append((start, start + spec.capacity_pages * PAGE_SIZE, t))
    return regions


@settings(max_examples=50, deadline=None)
@given(
    tenants=st.integers(min_value=1, max_value=6),
    tiers=st.sampled_from([2, 3]),
    weights=st.lists(
        st.floats(min_value=0.25, max_value=4.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=3,
    ),
)
def test_tenant_windows_never_overlap(tenants, tiers, weights):
    """No physical frame can belong to two tenants: every tenant×tier
    PA interval is pairwise disjoint (frames live inside their node's
    interval by construction)."""
    config = SimConfig()
    fleet = FleetConfig(
        tenants=tenants, tiers=tiers,
        weights=",".join(str(w) for w in weights),
    )
    footprint = 4096
    regions = sorted(_spec_regions(config, fleet, footprint))
    for (_, prev_end, _), (start, _, _) in zip(regions, regions[1:]):
        assert start >= prev_end, "tenant PA windows overlap"


def test_tenant_zero_gets_historic_bases():
    config = SimConfig()
    fleet = FleetConfig(tenants=1, tiers=3)
    specs = tenant_node_specs(config, fleet, 0, 4096)
    assert specs[0].resolved_base_pa == DDR_BASE
    assert specs[1].resolved_base_pa == CXL_BASE
    assert specs[2].resolved_base_pa == CXL_POOLED_BASE


def test_tenant_windows_stride_apart():
    config = SimConfig()
    fleet = FleetConfig(tenants=3, tiers=2)
    t0 = tenant_node_specs(config, fleet, 0, 4096)
    t1 = tenant_node_specs(config, fleet, 1, 4096)
    assert t1[0].resolved_base_pa - t0[0].resolved_base_pa == TENANT_PA_STRIDE
    assert t1[1].resolved_base_pa - t0[1].resolved_base_pa == TENANT_PA_STRIDE


def test_two_tier_spill_path_holds_footprint():
    config = SimConfig()
    fleet = FleetConfig(tenants=4, tiers=2)
    footprint = config.cxl_pages * 8  # far beyond any per-tenant share
    for t in range(fleet.tenants):
        specs = tenant_node_specs(config, fleet, t, footprint)
        assert specs[1].capacity_pages >= footprint


def test_three_tier_chain_path_holds_footprint():
    config = SimConfig()
    fleet = FleetConfig(tenants=4, tiers=3, pooled_capacity_gb=0.5)
    footprint = config.cxl_pages * 8
    for t in range(fleet.tenants):
        specs = tenant_node_specs(config, fleet, t, footprint)
        assert (
            specs[1].capacity_pages + specs[2].capacity_pages >= footprint
        )


def test_rejects_tenant_outside_fleet():
    config = SimConfig()
    fleet = FleetConfig(tenants=2, tiers=2)
    with pytest.raises(ValueError):
        tenant_node_specs(config, fleet, 2, 1024)


def test_rejects_fleet_beyond_window_layout():
    config = SimConfig()
    fleet = FleetConfig(tenants=MAX_TENANTS + 1, tiers=2)
    with pytest.raises(ValueError):
        tenant_node_specs(config, fleet, 0, 1024)
