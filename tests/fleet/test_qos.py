"""QoS arbiter properties: proportional sharing, water-filling,
contention factors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.perf import (
    bandwidth_shares,
    contention_factors,
    proportional_shares,
    weighted_fair_shares,
)

demand_lists = st.lists(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8,
)


def weight_lists_for(n):
    return st.lists(
        st.floats(min_value=0.01, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n,
    )


@settings(max_examples=200, deadline=None)
@given(demands=demand_lists, capacity=st.floats(
    min_value=0.1, max_value=1000.0, allow_nan=False, allow_infinity=False,
), data=st.data())
def test_qos_off_is_exactly_proportional_sharing(demands, capacity, data):
    """Disabling QoS must reproduce proportional-share bandwidth
    bit for bit, whatever the weights say."""
    weights = data.draw(weight_lists_for(len(demands)))
    shares = bandwidth_shares(demands, weights, capacity, qos=False)
    assert shares == proportional_shares(demands, capacity)


@settings(max_examples=200, deadline=None)
@given(demands=demand_lists, data=st.data(),
       qos=st.booleans(),
       capacity=st.floats(min_value=-10.0, max_value=0.0,
                          allow_nan=False, allow_infinity=False))
def test_unlimited_channel_grants_demand_exactly(demands, data, qos, capacity):
    weights = data.draw(weight_lists_for(len(demands)))
    assert bandwidth_shares(demands, weights, capacity, qos=qos) == [
        float(d) for d in demands
    ]


@settings(max_examples=200, deadline=None)
@given(demands=demand_lists, data=st.data())
def test_underloaded_qos_channel_satisfies_everyone(demands, data):
    """When total demand fits the channel, water-filling hands every
    tenant exactly its demand."""
    weights = data.draw(weight_lists_for(len(demands)))
    capacity = sum(demands) + 1.0
    shares = weighted_fair_shares(demands, weights, capacity)
    assert shares == [float(d) for d in demands]


@settings(max_examples=200, deadline=None)
@given(demands=demand_lists, data=st.data(),
       qos=st.booleans(),
       capacity=st.floats(min_value=0.1, max_value=500.0,
                          allow_nan=False, allow_infinity=False))
def test_shares_never_exceed_capacity(demands, data, qos, capacity):
    weights = data.draw(weight_lists_for(len(demands)))
    shares = bandwidth_shares(demands, weights, capacity, qos=qos)
    assert all(s >= 0.0 for s in shares)
    assert sum(shares) <= capacity * (1.0 + 1e-9)


def test_water_filling_insulates_light_tenants():
    # The 10 GB/s tenant fits under its fair slice and is untouched;
    # the heavy tenants split the surplus by weight.
    shares = weighted_fair_shares([10.0, 30.0, 60.0], [1.0, 1.0, 2.0], 50.0)
    assert shares[0] == 10.0
    assert shares[1] == pytest.approx(40.0 / 3.0)
    assert shares[2] == pytest.approx(80.0 / 3.0)
    assert sum(shares) == pytest.approx(50.0)


def test_proportional_sharing_punishes_everyone_equally():
    shares = proportional_shares([10.0, 30.0, 60.0], 50.0)
    factors = contention_factors([10.0, 30.0, 60.0], shares)
    # Total demand is 2x capacity, so every tenant stalls 2x.
    assert factors == pytest.approx([2.0, 2.0, 2.0])


@settings(max_examples=200, deadline=None)
@given(demands=demand_lists, data=st.data())
def test_contention_factors_are_stall_multipliers(demands, data):
    weights = data.draw(weight_lists_for(len(demands)))
    shares = bandwidth_shares(demands, weights, 25.0, qos=True)
    factors = contention_factors(demands, shares)
    for d, s, f in zip(demands, shares, factors):
        assert f >= 1.0
        if d > s and s > 0.0:
            assert f == d / s
        else:
            assert f == 1.0
