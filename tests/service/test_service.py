"""Tests for the streaming service daemon (``repro serve``).

Covers the bounded-buffer ingest discipline, the deterministic
round-robin scheduler, per-stream labelled metrics, and the
kill/resume contract: a service killed after a checkpoint and resumed
must produce per-stream results bit-identical to a service that was
never interrupted (and never checkpointed).
"""

import dataclasses
import json
import os
import pickle

import numpy as np
import pytest

from repro.service import (
    Service,
    ServiceConfig,
    StreamEmpty,
    StreamSpec,
    StreamWorkload,
    open_source,
)
from repro.sim import CheckpointError, SimConfig
from repro.verify.differential import _metric_mismatches
from repro.workloads import TraceWriter, record, save_trace, uniform_workload

CHUNK = 4096


def sim_cfg(**kw):
    defaults = dict(
        chunk_size=CHUNK,
        ddr_pages=512,
        cxl_pages=4096,
        pages_per_gb=1024,
        seed=5,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


def write_v2(tmp_path, name, n_chunks, seed):
    wl = uniform_workload(footprint_pages=2048, seed=seed)
    return record(wl, n_chunks * CHUNK, tmp_path / name, chunk_size=CHUNK)


def assert_results_bit_identical(a, b):
    assert set(a) == set(b)
    for name in a:
        da = dataclasses.asdict(a[name])
        db = dataclasses.asdict(b[name])
        ma, mb = da.pop("metrics"), db.pop("metrics")
        assert da == db, f"stream {name!r} diverged"
        assert _metric_mismatches(ma, mb) == 0, f"stream {name!r} metrics"


class TestStreamWorkload:
    @staticmethod
    def wl(capacity=1 << 20):
        spec = uniform_workload(footprint_pages=64).spec
        return StreamWorkload(spec, capacity=capacity)

    def test_fifo_across_chunk_boundaries(self):
        wl = self.wl()
        wl.feed(np.arange(10, dtype=np.uint64))
        wl.feed(np.arange(10, 20, dtype=np.uint64))
        assert np.array_equal(wl.chunk(5), np.arange(5, dtype=np.uint64))
        assert np.array_equal(wl.chunk(10), np.arange(5, 15, dtype=np.uint64))
        assert np.array_equal(wl.chunk(5), np.arange(15, 20, dtype=np.uint64))
        assert wl.buffered == 0
        assert wl.fed_total == 20 and wl.consumed_total == 20

    def test_over_ask_raises_stream_empty(self):
        wl = self.wl()
        wl.feed(np.arange(4, dtype=np.uint64))
        with pytest.raises(StreamEmpty):
            wl.chunk(5)
        # The refused read consumed nothing.
        assert wl.buffered == 4

    def test_backpressure_refuses_at_capacity(self):
        wl = self.wl(capacity=10)
        assert wl.feed(np.arange(8, dtype=np.uint64))  # 8 < 10
        # One chunk may overshoot the bound (a file chunk is the
        # transfer unit), but a full buffer refuses the next one.
        assert wl.feed(np.arange(8, dtype=np.uint64))  # 8 < 10 still
        assert wl.buffered == 16
        assert not wl.feed(np.arange(1, dtype=np.uint64))
        assert wl.free == 0
        wl.chunk(7)  # drain below capacity
        assert wl.feed(np.arange(1, dtype=np.uint64))

    def test_empty_chunk_is_accepted_without_effect(self):
        wl = self.wl()
        assert wl.feed(np.empty(0, dtype=np.uint64))
        assert wl.buffered == 0 and wl.fed_total == 0

    def test_pickle_preserves_in_flight_addresses(self):
        wl = self.wl()
        wl.feed(np.arange(10, dtype=np.uint64))
        wl.chunk(3)
        clone = pickle.loads(pickle.dumps(wl))
        assert clone.buffered == 7
        assert np.array_equal(clone.chunk(7),
                              np.arange(3, 10, dtype=np.uint64))

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            self.wl(capacity=0)


class TestOpenSource:
    def test_v2_source(self, tmp_path):
        path = write_v2(tmp_path, "s.rtrace", 3, seed=1)
        src = open_source(path, chunk_size=CHUNK)
        first = src.read_next()
        assert first.size == CHUNK
        assert src.chunks_read == 1
        assert src.skip(1) == 1
        assert src.read_next().size == CHUNK
        assert src.read_next() is None
        # The streaming reader learns "sealed" by walking to the
        # footer, so completeness is observable only at the end.
        assert src.complete
        assert src.total_addresses == 3 * CHUNK
        src.close()

    def test_v1_source(self, tmp_path):
        wl = uniform_workload(footprint_pages=64, seed=2)
        trace = wl.trace(2 * CHUNK + 100)
        path = save_trace(tmp_path / "s.npz", trace, wl.spec)
        src = open_source(path, chunk_size=CHUNK)
        assert src.complete
        assert src.total_addresses == trace.size
        parts = []
        while True:
            chunk = src.read_next()
            if chunk is None:
                break
            parts.append(chunk)
        assert np.array_equal(np.concatenate(parts), trace)
        assert src.chunks_read == 3
        assert src.skip(5) == 0  # already at the end


class TestValidation:
    def test_stream_spec_rejects_path_like_names(self):
        for bad in ("", "a/b", ".", ".."):
            with pytest.raises(ValueError):
                StreamSpec(name=bad, trace="t.rtrace")
        with pytest.raises(ValueError):
            StreamSpec(name="ok", trace="t.rtrace", budget=0)

    def test_service_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(buffer_capacity=0)
        with pytest.raises(ValueError):
            ServiceConfig(checkpoint_every=2)  # no checkpoint_dir
        with pytest.raises(ValueError):
            ServiceConfig(poll_interval_s=-1)

    def test_service_rejects_duplicate_names(self, tmp_path):
        path = write_v2(tmp_path, "s.rtrace", 1, seed=1)
        specs = [StreamSpec("a", str(path)), StreamSpec("a", str(path))]
        with pytest.raises(ValueError, match="duplicate"):
            Service(specs, sim_cfg())

    def test_service_rejects_engine_level_checkpointing(self, tmp_path):
        path = write_v2(tmp_path, "s.rtrace", 1, seed=1)
        cfg = sim_cfg(checkpoint_every=2, checkpoint_path="/tmp/x.ckpt")
        with pytest.raises(ValueError, match="owns checkpointing"):
            Service([StreamSpec("a", str(path))], cfg)

    def test_service_needs_streams(self):
        with pytest.raises(ValueError):
            Service([], sim_cfg())


class TestServiceRun:
    @staticmethod
    def specs(tmp_path):
        p1 = write_v2(tmp_path, "one.rtrace", 12, seed=21)
        p2 = write_v2(tmp_path, "two.rtrace", 8, seed=22)
        return [
            StreamSpec("one", str(p1), policy="m5-hpt", budget=2 * CHUNK),
            StreamSpec("two", str(p2), policy="anb", budget=CHUNK),
        ]

    def test_two_streams_run_to_completion(self, tmp_path):
        with Service(self.specs(tmp_path), sim_cfg()) as service:
            results = service.run()
        assert set(results) == {"one", "two"}
        assert results["one"].policy == "m5-hpt"
        assert results["two"].policy == "anb"
        for stream in service.streams:
            assert stream.finished
            assert stream.workload.buffered == 0
        assert service.streams[0].workload.consumed_total == 12 * CHUNK
        assert service.streams[1].workload.consumed_total == 8 * CHUNK
        assert service.round > 0

    def test_snapshot_labels_stream_series(self, tmp_path):
        with Service(self.specs(tmp_path), sim_cfg()) as service:
            service.run()
            snap = service.snapshot()
        families = {m["name"]: m for m in snap["metrics"]}
        assert families["service_rounds_total"]["series"][0]["value"] > 0
        consumed = {
            s["labels"]["stream"]: s["value"]
            for s in families["service_stream_accesses_total"]["series"]
        }
        assert consumed == {"one": 12 * CHUNK, "two": 8 * CHUNK}
        # Engine families arrive labelled per stream too.
        epoch_series = families["sim_epochs_total"]["series"]
        assert {s["labels"]["stream"] for s in epoch_series} == {"one", "two"}

    def test_max_rounds_caps_the_run(self, tmp_path):
        cfg = ServiceConfig(max_rounds=2)
        with Service(self.specs(tmp_path), sim_cfg(), cfg) as service:
            results = service.run()
        assert results == {}
        assert service.round == 2

    def test_request_stop_breaks_the_loop(self, tmp_path):
        with Service(self.specs(tmp_path), sim_cfg()) as service:
            service.request_stop()
            results = service.run()
        assert results == {}


class TestServiceCheckpointResume:
    def run_uninterrupted(self, tmp_path):
        with Service(TestServiceRun.specs(tmp_path), sim_cfg()) as svc:
            return svc.run()

    def test_kill_resume_bit_identical(self, tmp_path):
        baseline = self.run_uninterrupted(tmp_path)
        ckpt_dir = tmp_path / "ckpt"
        cfg = ServiceConfig(checkpoint_every=2, checkpoint_dir=str(ckpt_dir),
                            max_rounds=3)
        with Service(TestServiceRun.specs(tmp_path), sim_cfg(), cfg) as svc:
            partial = svc.run()
        assert partial == {}  # nothing finished in three rounds
        # The kill: the service object is gone, only the checkpoint
        # set (written at round 2) survives.
        resumed = Service.resume(ckpt_dir, max_rounds=0)
        with resumed:
            results = resumed.run()
        assert resumed.round > 3
        assert_results_bit_identical(baseline, results)

    def test_resume_overrides_only_what_was_asked(self, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        cfg = ServiceConfig(checkpoint_every=1, checkpoint_dir=str(ckpt_dir),
                            max_rounds=1, poll_interval_s=0.25)
        with Service(TestServiceRun.specs(tmp_path), sim_cfg(), cfg) as svc:
            svc.run()
        resumed = Service.resume(ckpt_dir, max_rounds=7)
        with resumed:
            assert resumed.config.max_rounds == 7
            assert resumed.config.poll_interval_s == 0.25
            assert resumed.config.checkpoint_every == 1
            assert resumed.round == 1
            assert resumed.sim_config.chunk_size == CHUNK

    def test_resume_rejects_truncated_source(self, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        path = write_v2(tmp_path, "s.rtrace", 6, seed=3)
        cfg = ServiceConfig(checkpoint_every=1, checkpoint_dir=str(ckpt_dir),
                            max_rounds=2)
        spec = StreamSpec("s", str(path), budget=2 * CHUNK)
        with Service([spec], sim_cfg(), cfg) as svc:
            svc.run()
        # Replace the trace with a shorter one: the checkpoint has
        # consumed more chunks than the file now holds.
        write_v2(tmp_path, "s.rtrace", 1, seed=3)
        with pytest.raises(CheckpointError, match="holds only"):
            Service.resume(ckpt_dir)

    def test_resume_rejects_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="manifest"):
            Service.resume(tmp_path / "nowhere")

    def test_resume_rejects_unknown_format(self, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        (ckpt_dir / "manifest.json").write_text(json.dumps({"format": 99}))
        with pytest.raises(CheckpointError, match="format"):
            Service.resume(ckpt_dir)

    def test_resume_detects_missing_finished_result(self, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        tiny = write_v2(tmp_path, "tiny.rtrace", 1, seed=4)
        big = write_v2(tmp_path, "big.rtrace", 10, seed=5)
        cfg = ServiceConfig(checkpoint_every=1, checkpoint_dir=str(ckpt_dir),
                            max_rounds=3)
        specs = [StreamSpec("tiny", str(tiny), budget=2 * CHUNK),
                 StreamSpec("big", str(big), budget=CHUNK)]
        with Service(specs, sim_cfg(), cfg) as svc:
            svc.run()
            assert "tiny" in svc.results  # drained and finalized
        os.remove(ckpt_dir / "results.pkl")
        with pytest.raises(CheckpointError, match="missing"):
            Service.resume(ckpt_dir)

    def test_checkpoint_writes_manifest_last(self, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        path = write_v2(tmp_path, "s.rtrace", 4, seed=6)
        cfg = ServiceConfig(checkpoint_every=1, checkpoint_dir=str(ckpt_dir),
                            max_rounds=1)
        with Service([StreamSpec("s", str(path))], sim_cfg(), cfg) as svc:
            svc.run()
        manifest = json.loads((ckpt_dir / "manifest.json").read_text())
        for entry in manifest["streams"]:
            # Everything the manifest names already exists on disk.
            assert (ckpt_dir / entry["checkpoint"]).exists()
        assert (ckpt_dir / "results.pkl").exists()
        assert not list(ckpt_dir.glob("*.tmp"))

    def test_checkpoint_fsyncs_every_artifact(self, tmp_path, monkeypatch):
        """Each checkpoint artifact — per-stream engine state, the
        results pickle, and the manifest — is fsynced before its
        atomic publish, so a power cut cannot leave a manifest that
        names files whose bytes never reached the disk."""
        synced = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        ckpt_dir = tmp_path / "ckpt"
        path = write_v2(tmp_path, "s.rtrace", 4, seed=6)
        cfg = ServiceConfig(checkpoint_every=1, checkpoint_dir=str(ckpt_dir),
                            max_rounds=1)
        with Service([StreamSpec("s", str(path))], sim_cfg(), cfg) as svc:
            svc.run()
        # At least the stream snapshot, results.pkl, and manifest.json.
        assert len(synced) >= 3


class TestServiceTailsLiveSource:
    def test_resume_continues_a_growing_trace(self, tmp_path):
        """Producer still appending at checkpoint time; the appended
        tail is consumed after resume, and the final result matches a
        run over the sealed file."""
        wl = uniform_workload(footprint_pages=2048, seed=31)
        chunks = [wl.trace(CHUNK) for _ in range(4)]
        live = tmp_path / "live.rtrace"
        writer = TraceWriter(live, wl.spec)
        writer.append(chunks[0])
        writer.append(chunks[1])

        ckpt_dir = tmp_path / "ckpt"
        spec = StreamSpec("live", str(live), budget=2 * CHUNK)
        cfg = ServiceConfig(checkpoint_every=1, checkpoint_dir=str(ckpt_dir),
                            max_rounds=2, poll_interval_s=0.0)
        with Service([spec], sim_cfg(), cfg) as svc:
            assert svc.run() == {}  # in flight: nothing finished
            consumed_early = svc.streams[0].workload.consumed_total
        assert consumed_early == 2 * CHUNK

        writer.append(chunks[2])
        writer.append(chunks[3])
        writer.close()

        resumed = Service.resume(ckpt_dir, max_rounds=0)
        with resumed:
            results = resumed.run()
        assert set(results) == {"live"}

        # Same file, sealed from the start, never interrupted: the
        # tail-then-resume run must land on the identical result
        # (epoch boundaries match because the file chunking equals
        # the engine chunking).
        with Service([StreamSpec("live", str(live), budget=2 * CHUNK)],
                     sim_cfg()) as sealed:
            baseline = sealed.run()
        assert_results_bit_identical(baseline, results)
