"""Tests for physical-address arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import address as addr


class TestConstants:
    def test_words_per_page(self):
        assert addr.WORDS_PER_PAGE == 64

    def test_shifts_consistent(self):
        assert 1 << addr.WORD_SHIFT == addr.WORD_SIZE
        assert 1 << addr.PAGE_SHIFT == addr.PAGE_SIZE
        assert addr.WORDS_PER_PAGE_SHIFT == addr.PAGE_SHIFT - addr.WORD_SHIFT


class TestConversions:
    def test_page_of(self):
        assert addr.page_of(0) == 0
        assert addr.page_of(4095) == 0
        assert addr.page_of(4096) == 1

    def test_word_line_of(self):
        assert addr.word_line_of(0) == 0
        assert addr.word_line_of(63) == 0
        assert addr.word_line_of(64) == 1

    def test_word_index_in_page(self):
        assert addr.word_index_in_page(0) == 0
        assert addr.word_index_in_page(64) == 1
        assert addr.word_index_in_page(4096) == 0
        assert addr.word_index_in_page(4096 + 63 * 64) == 63

    def test_page_of_word_line_matches_hardware_shift(self):
        # PAC's address-to-PFN converter: a 6-bit right shift of the
        # 64B line index.
        pa = 0x12345678 & ~0x3F
        line = addr.word_line_of(pa)
        assert addr.page_of_word_line(line) == addr.page_of(pa)

    def test_roundtrip_page(self):
        assert addr.page_of(addr.pa_of_page(123)) == 123

    def test_roundtrip_word_line(self):
        assert addr.word_line_of(addr.pa_of_word_line(999)) == 999

    @given(st.integers(min_value=0, max_value=addr.PA_SPACE - 1))
    def test_word_line_consistency(self, pa):
        line = addr.word_line_of(pa)
        assert addr.page_of_word_line(line) == addr.page_of(pa)
        assert addr.word_index_of_line(line) == addr.word_index_in_page(pa)

    def test_vectorised_matches_scalar(self):
        pas = np.array([0, 4095, 4096, 1 << 40], dtype=np.uint64)
        assert list(addr.as_page_array(pas)) == [addr.page_of(int(p)) for p in pas]
        assert list(addr.as_line_array(pas)) == [addr.word_line_of(int(p)) for p in pas]


class TestValidation:
    def test_validate_ok(self):
        assert addr.validate_pa(0) == 0
        assert addr.validate_pa(addr.PA_SPACE - 1) == addr.PA_SPACE - 1

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            addr.validate_pa(-1)

    def test_validate_rejects_beyond_48bit(self):
        with pytest.raises(ValueError):
            addr.validate_pa(addr.PA_SPACE)

    def test_pages_for_bytes(self):
        assert addr.pages_for_bytes(1) == 1
        assert addr.pages_for_bytes(4096) == 1
        assert addr.pages_for_bytes(4097) == 2
        assert addr.pages_for_bytes(0) == 0


class TestAddressRegion:
    def test_basic_properties(self):
        r = addr.AddressRegion(0x10000, 8 * addr.PAGE_SIZE)
        assert r.end == 0x10000 + 8 * 4096
        assert r.num_pages == 8
        assert r.num_word_lines == 8 * 64
        assert r.first_page == 0x10

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            addr.AddressRegion(0, 0)

    def test_rejects_out_of_space(self):
        with pytest.raises(ValueError):
            addr.AddressRegion(addr.PA_SPACE - 4096, 2 * 4096)

    def test_contains_scalar_and_vector(self):
        r = addr.AddressRegion(4096, 4096)
        assert r.contains(4096)
        assert r.contains(8191)
        assert not r.contains(8192)
        mask = r.contains(np.array([0, 4096, 8191, 8192], dtype=np.uint64))
        assert list(mask) == [False, True, True, False]

    def test_contains_page(self):
        r = addr.AddressRegion(2 * 4096, 3 * 4096)
        assert not r.contains_page(1)
        assert r.contains_page(2)
        assert r.contains_page(4)
        assert not r.contains_page(5)

    def test_offset_of(self):
        r = addr.AddressRegion(4096, 4096)
        assert r.offset_of(4100) == 4

    def test_equality_and_hash(self):
        a = addr.AddressRegion(0, 4096)
        b = addr.AddressRegion(0, 4096)
        c = addr.AddressRegion(4096, 4096)
        assert a == b
        assert a != c
        assert len({a, b, c}) == 2

    def test_repr_mentions_bounds(self):
        r = addr.AddressRegion(0x1000, 0x2000)
        assert "0x1000" in repr(r)
