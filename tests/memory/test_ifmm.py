"""Tests for the Intel Flat Memory Mode model (§9)."""

import numpy as np
import pytest

from repro.memory.ifmm import FlatMemoryMode


class TestResidency:
    def test_identity_prefix_initially_resident(self):
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16)
        assert fm.resident(3)
        assert not fm.resident(11)  # aliases slot 3, not resident

    def test_first_access_to_cached_word_hits(self):
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16)
        hits = fm.access(np.array([3]))
        assert hits[0]

    def test_access_to_uncached_word_swaps(self):
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16)
        hits = fm.access(np.array([11]))
        assert not hits[0]
        assert fm.resident(11)
        assert not fm.resident(3)  # displaced by the swap

    def test_swap_is_exclusive(self):
        """The displaced word moves to CXL; re-touching it swaps back."""
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16)
        fm.access(np.array([11]))
        hits = fm.access(np.array([3]))
        assert not hits[0]
        assert fm.resident(3)
        assert not fm.resident(11)

    def test_repeated_access_hits_after_first(self):
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16)
        hits = fm.access(np.array([11, 11, 11]))
        assert list(hits) == [False, True, True]


class TestStatsAndTiming:
    def test_stats_accumulate(self):
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16)
        fm.access(np.array([1, 9, 9]))
        assert fm.stats.ddr_hits == 2
        assert fm.stats.cxl_swaps == 1
        assert fm.stats.hit_rate == pytest.approx(2 / 3)

    def test_service_time(self):
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16, swap_extra_ns=40.0)
        hits = np.array([True, False])
        assert fm.service_time_ns(hits) == pytest.approx(100.0 + 310.0)

    def test_reset(self):
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16)
        fm.access(np.array([9]))
        fm.reset()
        assert fm.resident(1)
        assert fm.stats.total == 0


class TestAliasing:
    def test_equal_capacity_never_conflicts(self):
        """The 1:1 regime IFMM is designed for: every word has its own
        slot, so after the first touch everything hits."""
        fm = FlatMemoryMode(ddr_words=16, cxl_words=16)
        words = np.tile(np.arange(16), 4)
        hits = fm.access(words)
        assert hits[16:].all()

    def test_oversubscribed_hot_aliases_thrash(self):
        """Two hot words sharing a slot ping-pong — the §9 limitation
        that motivates pairing IFMM with M5."""
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16)
        words = np.tile(np.array([3, 11]), 50)  # alias in slot 3
        hits = fm.access(words)
        assert hits[1:].sum() == 0  # every access after the first swaps

    def test_byte_address_interface(self):
        fm = FlatMemoryMode(ddr_words=8, cxl_words=16)
        base = 0x1000_0000
        hits = fm.access_addresses(
            np.array([base + 64 * 3, base + 64 * 3], dtype=np.uint64), base=base
        )
        assert list(hits) == [True, True]


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            FlatMemoryMode(ddr_words=0, cxl_words=8)
        with pytest.raises(ValueError):
            FlatMemoryMode(ddr_words=16, cxl_words=8)
