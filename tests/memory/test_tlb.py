"""Tests for the TLB model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.tlb import Tlb, TlbShootdownModel


class TestAccess:
    def test_first_access_misses(self):
        tlb = Tlb(64, capacity=8, decay=0.0)
        missed = tlb.access(np.array([1, 2]))
        assert missed.all()
        assert tlb.misses == 2

    def test_second_access_hits(self):
        tlb = Tlb(64, capacity=8, decay=0.0)
        tlb.access(np.array([1]))
        missed = tlb.access(np.array([1]))
        assert not missed.any()
        assert tlb.hits == 1

    def test_duplicate_in_batch_counts_each(self):
        tlb = Tlb(64, capacity=8, decay=0.0)
        missed = tlb.access(np.array([1, 1]))
        # Both looked up before insertion completes the batch.
        assert missed.all()
        assert tlb.resident == 1

    def test_capacity_respected(self):
        tlb = Tlb(256, capacity=8, decay=0.0)
        tlb.access(np.arange(100))
        assert tlb.resident <= 8

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_resident_never_exceeds_capacity(self, pages):
        tlb = Tlb(64, capacity=4, decay=0.0)
        tlb.access(np.array(pages))
        assert 0 <= tlb.resident <= 4


class TestShootdownAndAging:
    def test_shootdown_removes_entries(self):
        tlb = Tlb(64, capacity=8, decay=0.0)
        tlb.access(np.array([1, 2]))
        assert tlb.shootdown(np.array([1])) == 1
        assert tlb.resident == 1

    def test_shootdown_missing_page_is_noop(self):
        tlb = Tlb(64, capacity=8, decay=0.0)
        assert tlb.shootdown(np.array([9])) == 0

    def test_aging_evicts_probabilistically(self):
        tlb = Tlb(4096, capacity=2048, decay=0.5, seed=3)
        tlb.access(np.arange(1000))
        tlb.age()
        assert tlb.resident < 1000

    def test_zero_decay_aging_is_noop(self):
        tlb = Tlb(64, capacity=8, decay=0.0)
        tlb.access(np.array([1, 2]))
        tlb.age()
        assert tlb.resident == 2

    def test_flush(self):
        tlb = Tlb(64, capacity=8, decay=0.0)
        tlb.access(np.array([1, 2]))
        tlb.flush()
        assert tlb.resident == 0


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tlb(64, capacity=0)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            Tlb(64, decay=1.5)


class TestShootdownModel:
    def test_cost_linear(self):
        model = TlbShootdownModel(cost_us_per_shootdown=4.0)
        assert model.cost_us(10) == pytest.approx(40.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            TlbShootdownModel(cost_us_per_shootdown=-1)
