"""Tests for the migration engine (Promoter's kernel half)."""

import numpy as np
import pytest

from repro.memory.migration import (
    MigrationCostModel,
    MigrationEngine,
    PinReason,
)
from repro.memory.tiers import NodeKind, TieredMemory


def make_engine(ddr=4, cxl=16, pages=8):
    mem = TieredMemory(ddr_pages=ddr, cxl_pages=cxl, num_logical_pages=pages)
    mem.allocate_all(NodeKind.CXL)
    return mem, MigrationEngine(mem)


class TestCostModel:
    def test_cost_linear(self):
        m = MigrationCostModel(54.0)
        assert m.cost_us(10) == pytest.approx(540.0)

    def test_breakeven_matches_paper(self):
        """§7.2: 54us / (270ns - 100ns) ≈ 318 accesses."""
        m = MigrationCostModel(54.0)
        assert m.breakeven_accesses(270.0, 100.0) == pytest.approx(317.6, abs=0.1)

    def test_breakeven_infinite_when_no_gain(self):
        m = MigrationCostModel(54.0)
        assert m.breakeven_accesses(100.0, 100.0) == float("inf")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MigrationCostModel(-1.0)

    def test_breakeven_default_latencies(self):
        """No-arg call uses the paper's 270/100ns pair."""
        m = MigrationCostModel(54.0)
        assert m.breakeven_accesses() == pytest.approx(
            m.breakeven_accesses(270.0, 100.0)
        )

    def test_breakeven_inverted_tiers(self):
        """Fast tier slower than slow tier: migration never pays off."""
        m = MigrationCostModel(54.0)
        assert m.breakeven_accesses(100.0, 270.0) == float("inf")

    def test_breakeven_zero_cost(self):
        """A free migration breaks even immediately."""
        m = MigrationCostModel(0.0)
        assert m.breakeven_accesses(270.0, 100.0) == 0.0


class TestPromotion:
    def test_promote_moves_pages(self):
        mem, eng = make_engine()
        assert eng.promote(np.array([0, 1])) == 2
        assert mem.node_of_page(0) is NodeKind.DDR
        assert eng.stats.promoted == 2
        assert eng.stats.time_us == pytest.approx(2 * 54.0)

    def test_promote_skips_already_on_ddr(self):
        mem, eng = make_engine()
        eng.promote(np.array([0]))
        assert eng.promote(np.array([0])) == 0

    def test_promote_demotes_when_full(self):
        mem, eng = make_engine(ddr=2)
        eng.promote(np.array([0, 1]))
        eng.mglru.age()
        # 2 and 3 must evict 0 and 1 (older generation).
        promoted = eng.promote(np.array([2, 3]))
        assert promoted == 2
        assert eng.stats.demoted == 2
        assert mem.node_of_page(2) is NodeKind.DDR
        assert mem.node_of_page(0) is NodeKind.CXL

    def test_promote_never_demotes_batch_member(self):
        mem, eng = make_engine(ddr=2)
        eng.promote(np.array([0, 1]))
        # Promoting [0, 2]: 0 already on DDR; victim for 2 must be 1.
        eng.promote(np.array([0, 2]))
        assert mem.node_of_page(0) is NodeKind.DDR
        assert mem.node_of_page(2) is NodeKind.DDR

    def test_ddr_reserve_respected(self):
        mem, _ = make_engine(ddr=4)
        eng = MigrationEngine(mem, ddr_reserve_pages=2)
        eng.promote(np.array([0, 1, 2, 3]))
        assert mem.nr_pages(NodeKind.DDR) <= 2 + 0  # 2 free reserved

    def test_mglru_tracks_promoted(self):
        _, eng = make_engine()
        eng.promote(np.array([0]))
        assert eng.mglru.generation_of(0) >= 0


class TestDemotion:
    def test_demote_moves_back(self):
        mem, eng = make_engine()
        eng.promote(np.array([0]))
        assert eng.demote(np.array([0])) == 1
        assert mem.node_of_page(0) is NodeKind.CXL
        assert eng.mglru.generation_of(0) == -1

    def test_demote_skips_cxl_resident(self):
        _, eng = make_engine()
        assert eng.demote(np.array([0])) == 0


class TestPinning:
    def test_pinned_pages_rejected(self):
        mem, eng = make_engine()
        eng.pin(np.array([0]), PinReason.DMA)
        assert eng.promote(np.array([0, 1])) == 1
        assert mem.node_of_page(0) is NodeKind.CXL
        assert eng.stats.rejected == 1
        assert eng.stats.rejected_by_reason[PinReason.DMA] == 1

    def test_unpin_restores_migratability(self):
        mem, eng = make_engine()
        eng.pin(np.array([0]), PinReason.NODE_BOUND)
        eng.unpin(np.array([0]))
        assert eng.promote(np.array([0])) == 1

    def test_pin_reason_query(self):
        _, eng = make_engine()
        eng.pin(np.array([0]), PinReason.NODE_BOUND)
        assert eng.pin_reason(0) is PinReason.NODE_BOUND
        assert eng.pin_reason(1) is PinReason.NONE

    def test_pin_none_rejected(self):
        _, eng = make_engine()
        with pytest.raises(ValueError):
            eng.pin(np.array([0]), PinReason.NONE)

    def test_pin_empty_array_noop(self):
        _, eng = make_engine()
        eng.pin(np.array([], dtype=np.int64), PinReason.DMA)
        assert all(eng.pin_reason(p) is PinReason.NONE for p in range(8))

    def test_unpin_empty_array_noop(self):
        _, eng = make_engine()
        eng.unpin(np.array([], dtype=np.int64))
        assert eng.promote(np.array([0])) == 1

    def test_reject_pinned_empty_batch(self):
        _, eng = make_engine()
        out = eng._reject_pinned(np.array([], dtype=np.int64))
        assert out.size == 0
        assert eng.stats.rejected == 0
        assert eng.stats.rejected_by_reason == {}

    def test_double_pin_last_reason_wins(self):
        _, eng = make_engine()
        eng.pin(np.array([0]), PinReason.DMA)
        eng.pin(np.array([0]), PinReason.NODE_BOUND)
        assert eng.pin_reason(0) is PinReason.NODE_BOUND
        assert eng.promote(np.array([0])) == 0
        assert eng.stats.rejected_by_reason == {PinReason.NODE_BOUND: 1}

    def test_unpin_never_pinned_is_noop(self):
        mem, eng = make_engine()
        eng.unpin(np.array([3]))
        assert eng.pin_reason(3) is PinReason.NONE
        assert eng.promote(np.array([3])) == 1
        assert mem.node_of_page(3) is NodeKind.DDR

    def test_reject_pinned_mixed_reasons_accounting(self):
        _, eng = make_engine()
        eng.pin(np.array([0, 1]), PinReason.DMA)
        eng.pin(np.array([2]), PinReason.NODE_BOUND)
        survivors = eng._reject_pinned(np.array([0, 1, 2, 3]))
        assert survivors.tolist() == [3]
        assert eng.stats.rejected == 3
        assert eng.stats.rejected_by_reason == {
            PinReason.DMA: 2,
            PinReason.NODE_BOUND: 1,
        }


class TestStats:
    def test_reset_stats(self):
        _, eng = make_engine()
        eng.promote(np.array([0]))
        eng.reset_stats()
        assert eng.stats.promoted == 0
        assert eng.stats.time_us == 0.0

    def test_frame_conservation_through_churn(self):
        """Frames stay unique through heavy promote/demote churn."""
        mem, eng = make_engine(ddr=4, cxl=16, pages=12)
        rng = np.random.default_rng(0)
        for _ in range(50):
            eng.promote(rng.choice(12, size=3, replace=False))
            eng.mglru.age()
        frames = mem.frame_map[:12]
        assert len(np.unique(frames)) == 12
        assert mem.ddr.used_pages + mem.cxl.used_pages == 12
