"""Tests for the tiered-memory model."""

import numpy as np
import pytest

from repro.memory.address import PAGE_SIZE
from repro.memory.tiers import MemoryNode, NodeKind, TieredMemory


class TestMemoryNode:
    def test_allocate_and_free(self):
        node = MemoryNode(NodeKind.DDR, 4, 0, 100.0)
        pfns = [node.allocate_frame() for _ in range(4)]
        assert len(set(pfns)) == 4
        assert node.free_pages == 0
        with pytest.raises(MemoryError):
            node.allocate_frame()
        node.free_frame(pfns[0])
        assert node.free_pages == 1

    def test_free_rejects_foreign_pfn(self):
        node = MemoryNode(NodeKind.DDR, 4, 0, 100.0)
        with pytest.raises(ValueError):
            node.free_frame(10_000)

    def test_frames_within_region(self):
        node = MemoryNode(NodeKind.CXL, 8, 0x10000000, 270.0)
        for _ in range(8):
            pfn = node.allocate_frame()
            assert node.region.contains_page(pfn)

    def test_epoch_counters(self):
        node = MemoryNode(NodeKind.DDR, 4, 0, 100.0)
        node.record_accesses(10)
        node.record_accesses(5)
        assert node.accesses_this_epoch == 15
        node.begin_epoch()
        assert node.accesses_this_epoch == 0
        assert node.accesses_total == 15


class TestAllocation:
    def test_allocate_all_on_cxl(self, tiered):
        assert tiered.nr_pages(NodeKind.CXL) == 32
        assert tiered.nr_pages(NodeKind.DDR) == 0

    def test_double_allocation_rejected(self, tiered):
        with pytest.raises(RuntimeError):
            tiered.allocate_all(NodeKind.CXL)

    def test_footprint_must_fit(self):
        with pytest.raises(ValueError):
            TieredMemory(ddr_pages=4, cxl_pages=4, num_logical_pages=16)

    def test_interleaved_allocation_fractions(self):
        mem = TieredMemory(ddr_pages=600, cxl_pages=600, num_logical_pages=1000)
        mem.allocate_interleaved(0.5)
        ddr = mem.nr_pages(NodeKind.DDR)
        assert 350 < ddr < 650
        assert ddr + mem.nr_pages(NodeKind.CXL) == 1000

    def test_interleaved_overflow_spills_to_other_node(self):
        mem = TieredMemory(ddr_pages=10, cxl_pages=100, num_logical_pages=100)
        mem.allocate_interleaved(0.9)  # DDR can't hold 90 pages
        assert mem.nr_pages(NodeKind.DDR) == 10
        assert mem.nr_pages(NodeKind.CXL) == 90


class TestPlacementMaps:
    def test_frame_map_unique(self, tiered):
        frames = tiered.frame_map[:32]
        assert len(np.unique(frames)) == 32

    def test_node_of_page(self, tiered):
        assert tiered.node_of_page(0) is NodeKind.CXL

    def test_reverse_map_roundtrip(self, tiered):
        pfn = tiered.frame_of_page(7)
        assert tiered.logical_page_of_pfn(pfn) == 7

    def test_reverse_map_unknown(self, tiered):
        assert tiered.logical_page_of_pfn(12345678) is None

    def test_vectorised_reverse_map(self, tiered):
        pfns = np.array([tiered.frame_of_page(i) for i in (3, 9, 20)])
        out = tiered.logical_pages_of_pfns(pfns)
        assert list(out) == [3, 9, 20]

    def test_vectorised_reverse_map_unknowns(self, tiered):
        out = tiered.logical_pages_of_pfns(np.array([999_999_999]))
        assert list(out) == [-1]


class TestMovePage:
    def test_move_to_ddr(self, tiered):
        old = tiered.frame_of_page(5)
        new = tiered.move_page(5, NodeKind.DDR)
        assert new != old
        assert tiered.node_of_page(5) is NodeKind.DDR
        assert tiered.ddr.region.contains_page(new)

    def test_move_is_idempotent(self, tiered):
        a = tiered.move_page(5, NodeKind.DDR)
        b = tiered.move_page(5, NodeKind.DDR)
        assert a == b

    def test_move_frees_source_frame(self, tiered):
        before = tiered.cxl.free_pages
        tiered.move_page(5, NodeKind.DDR)
        assert tiered.cxl.free_pages == before + 1

    def test_move_full_target_raises(self):
        mem = TieredMemory(ddr_pages=1, cxl_pages=4, num_logical_pages=3)
        mem.allocate_all(NodeKind.CXL)
        mem.move_page(0, NodeKind.DDR)
        with pytest.raises(MemoryError):
            mem.move_page(1, NodeKind.DDR)


class TestTranslate:
    def test_translate_preserves_offset(self, tiered):
        la = np.array([5 * PAGE_SIZE + 200], dtype=np.uint64)
        pa = tiered.translate(la)
        assert int(pa[0]) % PAGE_SIZE == 200
        assert int(pa[0]) // PAGE_SIZE == tiered.frame_of_page(5)

    def test_translate_tracks_migration(self, tiered):
        la = np.array([5 * PAGE_SIZE], dtype=np.uint64)
        before = tiered.translate(la)[0]
        tiered.move_page(5, NodeKind.DDR)
        after = tiered.translate(la)[0]
        assert before != after
        assert tiered.ddr.region.contains(int(after))

    def test_translate_rejects_unallocated(self):
        mem = TieredMemory(ddr_pages=4, cxl_pages=4, num_logical_pages=4)
        with pytest.raises(KeyError):
            mem.translate(np.array([0], dtype=np.uint64))


class TestMonitorStatistics:
    def test_bw_counts_read_bandwidth(self, tiered):
        tiered.begin_epoch(2.0)
        tiered.record_epoch_accesses(np.array([0, 1, 2, 0]))
        # 4 CXL accesses of 64B over 2 seconds
        assert tiered.bw(NodeKind.CXL) == pytest.approx(4 * 64 / 2.0)
        assert tiered.bw(NodeKind.DDR) == 0.0

    def test_bw_den_normalises_by_capacity(self, tiered):
        tiered.begin_epoch(1.0)
        tiered.record_epoch_accesses(np.array([0, 1]))
        expected = (2 * 64) / (32 * PAGE_SIZE)
        assert tiered.bw_den(NodeKind.CXL) == pytest.approx(expected)

    def test_bw_den_zero_when_empty(self, tiered):
        tiered.begin_epoch(1.0)
        assert tiered.bw_den(NodeKind.DDR) == 0.0

    def test_split_accounting(self, tiered):
        tiered.move_page(0, NodeKind.DDR)
        tiered.begin_epoch(1.0)
        tiered.record_epoch_accesses(np.array([0, 0, 1]))
        assert tiered.ddr.accesses_this_epoch == 2
        assert tiered.cxl.accesses_this_epoch == 1

    def test_stats_snapshot_keys(self, tiered):
        tiered.begin_epoch(1.0)
        stats = tiered.stats()
        assert set(stats) == {
            "nr_pages_ddr", "nr_pages_cxl", "bw_ddr", "bw_cxl",
            "bw_den_ddr", "bw_den_cxl",
        }

    def test_begin_epoch_rejects_nonpositive(self, tiered):
        with pytest.raises(ValueError):
            tiered.begin_epoch(0.0)

    def test_bw_proportional_to_page_share(self):
        """The §5.2 hypothesis: with random placement, bw(node) tracks
        nr_pages(node)."""
        rng = np.random.default_rng(0)
        mem = TieredMemory(ddr_pages=800, cxl_pages=800, num_logical_pages=900)
        mem.allocate_interleaved(2 / 3)
        mem.begin_epoch(1.0)
        pages = rng.integers(0, 900, 200_000)
        mem.record_epoch_accesses(pages)
        ratio_pages = mem.nr_pages(NodeKind.DDR) / mem.nr_pages(NodeKind.CXL)
        ratio_bw = mem.bw(NodeKind.DDR) / mem.bw(NodeKind.CXL)
        assert ratio_bw == pytest.approx(ratio_pages, rel=0.05)
