"""Tests for the MGLRU demotion-victim model."""

import numpy as np
import pytest

from repro.memory.mglru import MultiGenLru


class TestTracking:
    def test_track_sets_oldest_generation(self):
        lru = MultiGenLru(16)
        lru.track(np.array([1, 2]))
        assert lru.generation_of(1) >= 0

    def test_untracked_reports_minus_one(self):
        lru = MultiGenLru(16)
        assert lru.generation_of(3) == -1

    def test_untrack(self):
        lru = MultiGenLru(16)
        lru.track(np.array([1]))
        lru.untrack(np.array([1]))
        assert lru.generation_of(1) == -1

    def test_track_is_idempotent_for_generation(self):
        lru = MultiGenLru(16)
        lru.track(np.array([1]))
        lru.age()
        lru.record_accesses(np.array([1]))
        gen = lru.generation_of(1)
        lru.track(np.array([1]))  # re-track must not reset to old
        assert lru.generation_of(1) == gen


class TestAccessAndAge:
    def test_access_promotes_to_youngest(self):
        lru = MultiGenLru(16)
        lru.track(np.array([1, 2]))
        lru.age()
        lru.record_accesses(np.array([1]))
        assert lru.generation_of(1) == 0
        assert lru.generation_of(2) > 0

    def test_access_untracked_is_noop(self):
        lru = MultiGenLru(16)
        lru.record_accesses(np.array([5]))
        assert lru.generation_of(5) == -1

    def test_generation_window_bounded(self):
        lru = MultiGenLru(16, num_generations=4)
        lru.track(np.array([1]))
        for _ in range(10):
            lru.age()
        assert 0 <= lru.generation_of(1) <= 3

    def test_min_seq_follows_max(self):
        lru = MultiGenLru(16, num_generations=3)
        for _ in range(5):
            lru.age()
        assert lru.min_seq == lru.max_seq - 2


class TestColdest:
    def test_coldest_prefers_oldest(self):
        lru = MultiGenLru(16)
        lru.track(np.arange(4))
        lru.age()
        lru.record_accesses(np.array([0, 1]))  # 0,1 young; 2,3 old
        victims = lru.coldest(2)
        assert set(victims) == {2, 3}

    def test_coldest_respects_among(self):
        lru = MultiGenLru(16)
        lru.track(np.arange(8))
        victims = lru.coldest(3, among=np.array([5, 6]))
        assert set(victims) <= {5, 6}

    def test_coldest_skips_untracked(self):
        lru = MultiGenLru(16)
        lru.track(np.array([1]))
        victims = lru.coldest(5, among=np.array([1, 2, 3]))
        assert list(victims) == [1]

    def test_coldest_empty_cases(self):
        lru = MultiGenLru(16)
        assert lru.coldest(3).size == 0
        lru.track(np.array([1]))
        assert lru.coldest(0).size == 0

    def test_coldest_deterministic_tie_break(self):
        lru = MultiGenLru(16)
        lru.track(np.array([3, 1, 2]))
        assert list(lru.coldest(3)) == [1, 2, 3]

    def test_tracked_count(self):
        lru = MultiGenLru(16)
        lru.track(np.array([1, 2, 3]))
        lru.untrack(np.array([2]))
        assert lru.tracked_count() == 2


class TestValidation:
    def test_rejects_single_generation(self):
        with pytest.raises(ValueError):
            MultiGenLru(16, num_generations=1)
