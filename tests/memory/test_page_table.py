"""Tests for the PTE model (present/access bits)."""

import numpy as np
import pytest

from repro.memory.page_table import PageTable
from repro.memory.tlb import Tlb


def table(n=64, capacity=16, decay=0.0):
    return PageTable(n, tlb=Tlb(n, capacity=capacity, decay=decay))


class TestTouch:
    def test_no_faults_when_present(self):
        pt = table()
        faults = pt.touch(np.array([1, 2, 3]))
        assert not faults.any()
        assert pt.hinting_faults == 0

    def test_access_bits_set_on_walk(self):
        pt = table()
        pt.touch(np.array([5]))
        assert pt.accessed[5]

    def test_access_bit_not_set_on_tlb_hit(self):
        pt = table()
        pt.touch(np.array([5]))
        pt.scan_and_clear_accessed(np.array([5]))
        # Translation still cached: the second touch walks nothing.
        pt.touch(np.array([5]))
        assert not pt.accessed[5]

    def test_access_bit_set_again_after_shootdown(self):
        pt = table()
        pt.touch(np.array([5]))
        pt.scan_and_clear_accessed(np.array([5]))
        pt.tlb.shootdown(np.array([5]))
        pt.touch(np.array([5]))
        assert pt.accessed[5]


class TestUnmapAndFault:
    def test_unmap_clears_present(self):
        pt = table()
        assert pt.unmap(np.array([3, 4])) == 2
        assert not pt.present[3]
        assert not pt.present[4]

    def test_unmap_counts_only_present(self):
        pt = table()
        pt.unmap(np.array([3]))
        assert pt.unmap(np.array([3])) == 0

    def test_fault_on_unmapped_access(self):
        pt = table()
        pt.unmap(np.array([3]))
        faults = pt.touch(np.array([2, 3, 3]))
        assert list(faults) == [False, True, True]
        # One page faulted (handled once), now present again.
        assert pt.hinting_faults == 1
        assert pt.present[3]

    def test_second_access_after_fault_no_fault(self):
        pt = table()
        pt.unmap(np.array([3]))
        pt.touch(np.array([3]))
        faults = pt.touch(np.array([3]))
        assert not faults.any()

    def test_unmap_shoots_down_tlb(self):
        pt = table()
        pt.touch(np.array([3]))
        resident_before = pt.tlb.resident
        pt.unmap(np.array([3]))
        assert pt.tlb.resident == resident_before - 1


class TestScan:
    def test_scan_returns_and_clears(self):
        pt = table()
        pt.touch(np.array([1, 2]))
        bits = pt.scan_and_clear_accessed(np.arange(4))
        assert list(bits) == [False, True, True, False]
        bits = pt.scan_and_clear_accessed(np.arange(4))
        assert not bits.any()

    def test_scan_counts_pte_writes(self):
        pt = table()
        pt.reset_counters()
        pt.scan_and_clear_accessed(np.arange(10))
        assert pt.pte_writes == 10

    def test_boolean_access_bit_loses_intensity(self):
        """§2.1: the access bit captures one access per epoch no
        matter how many occurred — hot and warm look identical."""
        pt = table()
        pt.touch(np.array([1] * 100 + [2]))
        bits = pt.scan_and_clear_accessed(np.array([1, 2]))
        assert bits[0] == bits[1] == True  # noqa: E712

    def test_reset_counters(self):
        pt = table()
        pt.unmap(np.array([1]))
        pt.touch(np.array([1]))
        pt.reset_counters()
        assert pt.hinting_faults == 0
        assert pt.pte_writes == 0


class TestValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            PageTable(0)
