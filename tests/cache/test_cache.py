"""Tests for the LLC models."""

import numpy as np
import pytest

from repro.cache.cache import ProbabilisticLlcFilter, SetAssociativeCache


class TestSetAssociativeCache:
    def test_first_access_misses_second_hits(self):
        c = SetAssociativeCache(capacity_bytes=64 * 16, ways=4)
        assert not c.access_line(5)
        assert c.access_line(5)
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction_within_set(self):
        # 1 set, 2 ways: lines mapping to set 0 compete.
        c = SetAssociativeCache(capacity_bytes=64 * 2, ways=2)
        assert c.num_sets == 1
        c.access_line(0)
        c.access_line(1)
        c.access_line(0)     # 0 most recent
        c.access_line(2)     # evicts 1 (LRU)
        assert c.access_line(0)
        assert not c.access_line(1)

    def test_filter_returns_misses_in_order(self):
        c = SetAssociativeCache(capacity_bytes=64 * 64, ways=4)
        pa = np.array([0, 64, 0, 128], dtype=np.uint64)
        out = c.filter(pa)
        assert list(out) == [0, 64, 128]

    def test_cat_way_mask_shrinks_capacity(self):
        full = SetAssociativeCache(capacity_bytes=64 * 150, ways=15)
        cat = SetAssociativeCache(capacity_bytes=64 * 150, ways=15,
                                  allocated_ways=5)
        assert cat.effective_lines == full.effective_lines // 3

    def test_smaller_cache_misses_more(self):
        rng = np.random.default_rng(0)
        pa = (rng.integers(0, 512, 4000).astype(np.uint64)) << np.uint64(6)
        big = SetAssociativeCache(capacity_bytes=64 * 512, ways=8)
        small = SetAssociativeCache(capacity_bytes=64 * 32, ways=8)
        big.filter(pa.copy())
        small.filter(pa.copy())
        assert small.hit_rate < big.hit_rate

    def test_flush_and_reset(self):
        c = SetAssociativeCache(capacity_bytes=64 * 16, ways=4)
        c.access_line(1)
        c.flush()
        assert not c.access_line(1)
        c.reset_stats()
        assert c.hits == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0)
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, line_bytes=100)
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, ways=4, allocated_ways=8)

    def test_hit_rate_zero_initially(self):
        c = SetAssociativeCache(1024)
        assert c.hit_rate == 0.0


class TestProbabilisticFilter:
    def test_preserves_at_least_one_miss_per_line(self):
        f = ProbabilisticLlcFilter(resident_lines=1000, seed=0)
        pa = (np.arange(100, dtype=np.uint64)) << np.uint64(6)
        out = f.filter(pa)
        assert len(np.unique(out)) == 100

    def test_hot_lines_filtered_hardest(self):
        f = ProbabilisticLlcFilter(resident_lines=64, seed=1)
        hot = np.zeros(10_000, dtype=np.uint64)
        cold = (np.arange(10_000, dtype=np.uint64) + 1000) << np.uint64(6)
        out_hot = f.filter(hot)
        f2 = ProbabilisticLlcFilter(resident_lines=64, seed=1)
        out_cold = f2.filter(cold)
        assert len(out_hot) < len(out_cold)

    def test_empty_input(self):
        f = ProbabilisticLlcFilter(resident_lines=8)
        assert f.filter(np.array([], dtype=np.uint64)).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticLlcFilter(0)
