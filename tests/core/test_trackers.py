"""Tests for the HPT/HWT top-K trackers."""

import numpy as np
import pytest

from repro.core.trackers import (
    CmSketchTopK,
    ExactTopK,
    SpaceSavingTopK,
    make_hpt,
    make_hwt,
)


def skewed_addresses(rng, num_pages=200, count=20_000, exponent=1.2):
    ranks = np.arange(1, num_pages + 1, dtype=np.float64) ** -exponent
    p = ranks / ranks.sum()
    pages = rng.choice(num_pages, size=count, p=p)
    words = rng.integers(0, 64, count)
    return ((pages.astype(np.uint64) << np.uint64(12))
            | (words.astype(np.uint64) << np.uint64(6)))


class TestGranularity:
    def test_page_keys(self):
        t = ExactTopK(4, granularity="page")
        t.observe(np.array([0x5000, 0x5040, 0x6000], dtype=np.uint64))
        top = dict(t.peek())
        assert top[5] == 2
        assert top[6] == 1

    def test_word_keys(self):
        t = ExactTopK(4, granularity="word")
        t.observe(np.array([0x5000, 0x5040, 0x5040], dtype=np.uint64))
        top = dict(t.peek())
        assert top[0x5040 >> 6] == 2

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            ExactTopK(4, granularity="byte")

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ExactTopK(0)


class TestQueryReset:
    def test_query_returns_and_resets(self):
        t = ExactTopK(4)
        t.observe(np.array([0x5000] * 3, dtype=np.uint64))
        result = t.query()
        assert result == [(5, 3)]
        assert t.peek() == []
        assert t.queries_served == 1

    def test_peek_does_not_reset(self):
        t = ExactTopK(4)
        t.observe(np.array([0x5000], dtype=np.uint64))
        t.peek()
        assert t.peek() == [(5, 1)]


class TestCmSketchTracker:
    def test_exact_sequence_matches_hardware_semantics(self):
        t = CmSketchTopK(2, num_counters=1024, exact_sequence=True)
        t.observe(np.array([0x1000] * 5 + [0x2000] * 3 + [0x3000],
                           dtype=np.uint64))
        top = t.query()
        assert [k for k, _ in top] == [1, 2]

    def test_batched_finds_same_heavy_hitters(self):
        rng = np.random.default_rng(0)
        pa = skewed_addresses(rng)
        exact = CmSketchTopK(5, num_counters=32 * 1024, exact_sequence=True)
        batched = CmSketchTopK(5, num_counters=32 * 1024)
        exact.observe(pa)
        batched.observe(pa)
        top_e = {k for k, _ in exact.query()}
        top_b = {k for k, _ in batched.query()}
        assert len(top_e & top_b) >= 4

    def test_large_sketch_near_oracle(self):
        rng = np.random.default_rng(1)
        pa = skewed_addresses(rng)
        cms = CmSketchTopK(5, num_counters=32 * 1024)
        oracle = ExactTopK(5)
        cms.observe(pa)
        oracle.observe(pa)
        assert {k for k, _ in cms.query()} == {k for k, _ in oracle.query()}

    def test_small_sketch_degrades(self):
        """§7.1: CM-Sketch suffers hash collisions at small N."""
        rng = np.random.default_rng(2)
        pa = skewed_addresses(rng, num_pages=5000, count=50_000, exponent=0.8)
        small = CmSketchTopK(5, num_counters=64)
        oracle = ExactTopK(5)
        small.observe(pa)
        oracle.observe(pa)
        small_top = {k for k, _ in small.query()}
        oracle_top = {k for k, _ in oracle.query()}
        assert small_top != oracle_top  # collisions displace true tops

    def test_counters_validated(self):
        with pytest.raises(ValueError):
            CmSketchTopK(5, num_counters=2, depth=4)


class TestSpaceSavingTracker:
    def test_capacity_must_cover_k(self):
        with pytest.raises(ValueError):
            SpaceSavingTopK(10, capacity=5)

    def test_finds_heavy_hitters(self):
        rng = np.random.default_rng(3)
        pa = skewed_addresses(rng, exponent=1.5)
        ss = SpaceSavingTopK(5, capacity=50)
        oracle = ExactTopK(5)
        ss.observe(pa)
        oracle.observe(pa)
        overlap = {k for k, _ in ss.query()} & {k for k, _ in oracle.query()}
        assert len(overlap) >= 3

    def test_exact_sequence_mode(self):
        ss = SpaceSavingTopK(2, capacity=4, exact_sequence=True)
        ss.observe(np.array([0x1000] * 5 + [0x2000], dtype=np.uint64))
        assert ss.query()[0][0] == 1

    def test_accuracy_grows_with_capacity(self):
        """§7.1: preciseness strongly depends on N."""
        rng = np.random.default_rng(4)
        pa = skewed_addresses(rng, num_pages=2000, count=40_000, exponent=0.9)
        oracle = ExactTopK(5)
        oracle.observe(pa)
        truth = dict(oracle.query())

        def score(capacity):
            t = SpaceSavingTopK(5, capacity=capacity)
            t.observe(pa)
            got = [k for k, _ in t.query()]
            return sum(truth.get(k, 0) for k in got)

        assert score(2000) >= score(10)


class TestFactories:
    def test_make_hpt_defaults(self):
        hpt = make_hpt()
        assert hpt.granularity == "page"
        assert isinstance(hpt, CmSketchTopK)
        assert hpt.num_counters == 32 * 1024

    def test_make_hwt_word_granularity(self):
        hwt = make_hwt(algorithm="space-saving", num_counters=50)
        assert hwt.granularity == "word"
        assert isinstance(hwt, SpaceSavingTopK)

    def test_make_exact(self):
        t = make_hpt(algorithm="exact")
        assert isinstance(t, ExactTopK)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            make_hpt(algorithm="bloom")
