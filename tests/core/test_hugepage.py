"""Tests for the §8 huge-page extension."""

import numpy as np
import pytest

from repro.core.hugepage import (
    HUGE_SHIFT,
    PAGES_PER_HUGE,
    HugePageAggregator,
    make_huge_hpt,
)


def pfns_in_huge(hfn, count, start=0):
    """(pfn, count) HPT entries inside one 2MB region."""
    base = hfn << HUGE_SHIFT
    return [(base + start + i, 10) for i in range(count)]


class TestAggregation:
    def test_accumulates_counts_and_occupancy(self):
        agg = HugePageAggregator(min_occupancy=1)
        agg.update_from_hpt(pfns_in_huge(3, 4))
        assert agg.pending == 1
        [entry] = agg.nominate()
        assert entry.hfn == 3
        assert entry.count == 40
        assert entry.occupancy == 4

    def test_nominate_sorts_by_heat(self):
        agg = HugePageAggregator(min_occupancy=1)
        agg.update_from_hpt(pfns_in_huge(1, 2))
        agg.update_from_hpt(pfns_in_huge(2, 5))
        order = [e.hfn for e in agg.nominate()]
        assert order == [2, 1]

    def test_nominate_consumes_state(self):
        agg = HugePageAggregator(min_occupancy=1)
        agg.update_from_hpt(pfns_in_huge(1, 1))
        agg.nominate()
        assert agg.nominate() == []

    def test_limit(self):
        agg = HugePageAggregator(min_occupancy=1)
        for hfn in range(5):
            agg.update_from_hpt(pfns_in_huge(hfn, 1))
        assert len(agg.nominate(limit=2)) == 2


class TestGuards:
    def test_occupancy_guard(self):
        """One hot 4KB page must not drag in a 2MB promotion."""
        agg = HugePageAggregator(min_occupancy=8)
        agg.update_from_hpt(pfns_in_huge(1, 7))
        assert agg.nominate() == []
        agg.update_from_hpt(pfns_in_huge(2, 8))
        assert [e.hfn for e in agg.nominate()] == [2]

    def test_os_consultation(self):
        """§8: 'M5 needs to consult with the OS to check whether these
        page addresses belong to allocated huge pages.'"""
        agg = HugePageAggregator(
            is_huge_allocated=lambda hfn: hfn % 2 == 0, min_occupancy=1
        )
        agg.update_from_hpt(pfns_in_huge(1, 3))
        agg.update_from_hpt(pfns_in_huge(2, 3))
        assert [e.hfn for e in agg.nominate()] == [2]
        assert agg.rejected_not_huge == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HugePageAggregator(min_occupancy=0)
        with pytest.raises(ValueError):
            HugePageAggregator(min_occupancy=PAGES_PER_HUGE + 1)


class TestHugeHpt:
    def test_keys_are_2mb_granular(self):
        tracker = make_huge_hpt(k=4)
        # Two addresses in the same 2MB region, one outside.
        pa = np.array([0x20_0000, 0x20_0040, 0x40_0000], dtype=np.uint64)
        tracker.observe(pa)
        top = dict(tracker.peek())
        assert top[1] == 2  # 2MB frame 1 observed twice
        assert top[2] == 1

    def test_granularity_label(self):
        assert make_huge_hpt().granularity == "huge-page"
