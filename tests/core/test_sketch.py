"""Tests for the CountMin-Sketch estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketch import CountMinSketch


class TestConstruction:
    def test_width_rounded_to_power_of_two(self):
        cms = CountMinSketch(width=100, depth=4)
        assert cms.width == 128
        assert cms.num_counters == 4 * 128

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(width=16, depth=0)
        with pytest.raises(ValueError):
            CountMinSketch(width=16, depth=99)


class TestUpdateOne:
    def test_estimate_after_single_update(self):
        cms = CountMinSketch(width=1024, depth=4)
        assert cms.update_one(42) == 1
        assert cms.estimate_one(42) == 1

    def test_estimates_grow_with_repeats(self):
        cms = CountMinSketch(width=1024, depth=4)
        for _ in range(10):
            est = cms.update_one(7)
        assert est == 10

    def test_conservative_update_tighter(self):
        """Conservative update never overestimates more than plain."""
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 50, 3000)
        plain = CountMinSketch(width=32, depth=4)
        cons = CountMinSketch(width=32, depth=4, conservative=True)
        for k in keys.tolist():
            plain.update_one(k)
            cons.update_one(k)
        true = np.bincount(keys, minlength=50)
        for k in range(50):
            assert cons.estimate_one(k) <= plain.estimate_one(k)
            assert cons.estimate_one(k) >= true[k]


class TestBatchUpdate:
    def test_batch_equals_sequential_state(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 1000, 5000).astype(np.uint64)
        seq = CountMinSketch(width=256, depth=4)
        bat = CountMinSketch(width=256, depth=4)
        for k in keys.tolist():
            seq.update_one(k)
        bat.update_batch(keys)
        assert np.array_equal(seq.table, bat.table)

    def test_weighted_batch(self):
        cms = CountMinSketch(width=256, depth=4)
        cms.update_batch(np.array([5], dtype=np.uint64),
                         np.array([7], dtype=np.uint64))
        assert cms.estimate_one(5) == 7
        assert cms.items_seen == 7

    def test_weights_shape_checked(self):
        cms = CountMinSketch(width=256, depth=4)
        with pytest.raises(ValueError):
            cms.update_batch(np.array([1, 2], dtype=np.uint64),
                             np.array([1], dtype=np.uint64))

    def test_empty_batch_noop(self):
        cms = CountMinSketch(width=256, depth=4)
        cms.update_batch(np.array([], dtype=np.uint64))
        assert cms.items_seen == 0


class TestGuarantees:
    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=500))
    def test_never_underestimates(self, keys):
        """The CM-Sketch one-sided error guarantee."""
        cms = CountMinSketch(width=64, depth=4)
        cms.update_batch(np.array(keys, dtype=np.uint64))
        values, counts = np.unique(keys, return_counts=True)
        estimates = cms.estimate(values.astype(np.uint64))
        assert (estimates >= counts).all()

    def test_error_bounded_for_large_width(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 200, 20_000)
        cms = CountMinSketch(width=8192, depth=4)
        cms.update_batch(keys.astype(np.uint64))
        true = np.bincount(keys, minlength=200)
        ests = cms.estimate(np.arange(200, dtype=np.uint64))
        # With W >> cardinality, estimates should be near-exact.
        assert (ests.astype(np.int64) - true).max() <= cms.error_bound()

    def test_collisions_inflate_estimates_when_small(self):
        """The §7.1 observation: CM-Sketch 'severely suffers from hash
        collisions when N is small'."""
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 5000, 20_000)
        small = CountMinSketch(width=16, depth=4)
        small.update_batch(keys.astype(np.uint64))
        true = np.bincount(keys, minlength=5000)
        ests = small.estimate(np.arange(5000, dtype=np.uint64))
        assert (ests.astype(np.int64) - true).mean() > 10

    def test_rows_hash_independently(self):
        cms = CountMinSketch(width=1024, depth=4)
        idx = cms._hash(np.array([123456789], dtype=np.uint64))[:, 0]
        assert len(set(idx.tolist())) > 1


class TestReset:
    def test_reset_clears(self):
        cms = CountMinSketch(width=64, depth=2)
        cms.update_one(5)
        cms.reset()
        assert cms.table.sum() == 0
        assert cms.items_seen == 0
        assert cms.estimate_one(5) == 0
