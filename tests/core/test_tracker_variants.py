"""Tests for the Misra-Gries and Sticky-Sampling tracker variants."""

import numpy as np

from repro.core.trackers import (
    ExactTopK,
    MisraGriesTopK,
    StickySamplingTopK,
    make_hpt,
)


def skewed_addresses(rng, num_pages=200, count=20_000, exponent=1.4):
    ranks = np.arange(1, num_pages + 1, dtype=np.float64) ** -exponent
    p = ranks / ranks.sum()
    pages = rng.choice(num_pages, size=count, p=p)
    return pages.astype(np.uint64) << np.uint64(12)


class TestMisraGriesTopK:
    def test_finds_heavy_hitters(self):
        rng = np.random.default_rng(0)
        pa = skewed_addresses(rng)
        mg = MisraGriesTopK(5, capacity=64)
        oracle = ExactTopK(5)
        mg.observe(pa)
        oracle.observe(pa)
        overlap = {k for k, _ in mg.query()} & {k for k, _ in oracle.query()}
        assert len(overlap) >= 3

    def test_underestimates(self):
        pa = np.array([0x1000] * 100 + [0x2000] * 3, dtype=np.uint64)
        mg = MisraGriesTopK(2, capacity=4, exact_sequence=True)
        mg.observe(pa)
        top = dict(mg.peek())
        assert top[1] <= 100

    def test_factory(self):
        t = make_hpt(algorithm="misra-gries", num_counters=32)
        assert isinstance(t, MisraGriesTopK)
        assert t.capacity == 32


class TestStickySamplingTopK:
    def test_finds_heavy_hitters(self):
        rng = np.random.default_rng(1)
        pa = skewed_addresses(rng, exponent=1.6)
        ss = StickySamplingTopK(5, seed=2)
        oracle = ExactTopK(5)
        ss.observe(pa)
        oracle.observe(pa)
        overlap = {k for k, _ in ss.query()} & {k for k, _ in oracle.query()}
        assert len(overlap) >= 3

    def test_query_resets(self):
        ss = StickySamplingTopK(5, seed=3)
        ss.observe(np.array([0x1000] * 50, dtype=np.uint64))
        assert ss.query()
        assert ss.peek() == []

    def test_factory(self):
        t = make_hpt(algorithm="sticky-sampling")
        assert isinstance(t, StickySamplingTopK)

    def test_word_granularity(self):
        t = StickySamplingTopK(4, granularity="word", seed=4)
        t.observe(np.array([0x1000, 0x1040], dtype=np.uint64))
        keys = {k for k, _ in t.peek()}
        assert keys <= {0x1000 >> 6, 0x1040 >> 6}


class TestThreeFamilies:
    def test_all_families_agree_on_extreme_skew(self):
        """Counter-, sketch-, and sampling-based trackers must all
        find an overwhelming heavy hitter."""
        stream = np.array([0x7000] * 5000 + list(range(0, 64 * 4096, 4096)),
                          dtype=np.uint64)
        rng = np.random.default_rng(5)
        rng.shuffle(stream)
        for t in (
            make_hpt(k=1, algorithm="cm-sketch", num_counters=4096),
            make_hpt(k=1, algorithm="space-saving", num_counters=50),
            make_hpt(k=1, algorithm="misra-gries", num_counters=50),
            make_hpt(k=1, algorithm="sticky-sampling"),
        ):
            t.observe(stream)
            assert t.query()[0][0] == 7, type(t).__name__
