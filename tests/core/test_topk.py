"""Tests for the sorted-CAM top-K table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import SortedCam


class TestOffer:
    def test_fills_free_entries(self):
        cam = SortedCam(2)
        assert cam.offer(1, 10)
        assert cam.offer(2, 5)
        assert len(cam) == 2

    def test_hit_updates_count(self):
        cam = SortedCam(2)
        cam.offer(1, 10)
        cam.offer(1, 25)
        assert cam.count_of(1) == 25
        assert cam.hits == 1

    def test_miss_replaces_minimum_when_larger(self):
        cam = SortedCam(2)
        cam.offer(1, 10)
        cam.offer(2, 5)
        assert cam.offer(3, 7)
        assert 2 not in cam
        assert 3 in cam

    def test_miss_rejected_when_not_larger(self):
        cam = SortedCam(2)
        cam.offer(1, 10)
        cam.offer(2, 5)
        assert not cam.offer(3, 5)  # equal to min: not larger
        assert cam.rejections == 1
        assert 2 in cam

    def test_table_min(self):
        cam = SortedCam(2)
        assert cam.table_min == 0
        cam.offer(1, 10)
        assert cam.table_min == 0  # free entry remains
        cam.offer(2, 4)
        assert cam.table_min == 4

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SortedCam(0)


class TestEntries:
    def test_entries_sorted_desc(self):
        cam = SortedCam(3)
        cam.offer(1, 5)
        cam.offer(2, 9)
        cam.offer(3, 7)
        assert [a for a, _ in cam.entries()] == [2, 3, 1]

    def test_tie_break_by_address(self):
        cam = SortedCam(3)
        cam.offer(9, 5)
        cam.offer(3, 5)
        assert [a for a, _ in cam.entries()] == [3, 9]

    def test_addresses(self):
        cam = SortedCam(2)
        cam.offer(1, 5)
        cam.offer(2, 9)
        assert cam.addresses() == [2, 1]

    def test_reset(self):
        cam = SortedCam(2)
        cam.offer(1, 5)
        cam.reset()
        assert len(cam) == 0
        assert cam.count_of(1) == 0


class TestInvariants:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 100)),
                    min_size=1, max_size=200))
    def test_size_bounded_and_min_never_decreases_on_replace(self, offers):
        cam = SortedCam(4)
        for addr, est in offers:
            was_full = len(cam) == 4 and addr not in cam
            before = cam.table_min
            cam.offer(addr, est)
            assert len(cam) <= 4
            if was_full and est > before:
                # replacement keeps at least the old minimum's successor
                assert cam.table_min >= before

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(1, 50)),
                    min_size=1, max_size=100))
    def test_entries_always_sorted(self, offers):
        cam = SortedCam(3)
        for addr, est in offers:
            cam.offer(addr, est)
            counts = [c for _, c in cam.entries()]
            assert counts == sorted(counts, reverse=True)


class TestOfferStats:
    """Insertions into free entries must not count as replacements."""

    def test_free_entry_insert_is_not_a_replacement(self):
        cam = SortedCam(4)
        for addr in range(4):
            cam.offer(addr, 10 + addr)
        assert cam.insertions == 4
        assert cam.replacements == 0

    def test_eviction_counts_as_replacement(self):
        cam = SortedCam(2)
        cam.offer(1, 5)
        cam.offer(2, 6)
        cam.offer(3, 7)  # evicts 1 (min, count 5)
        assert cam.insertions == 2
        assert cam.replacements == 1
        assert cam.rejections == 0

    def test_offer_stats_are_conserved(self):
        cam = SortedCam(3)
        offers = [(1, 5), (2, 6), (1, 7), (3, 4), (4, 9), (5, 1), (2, 8)]
        for addr, est in offers:
            cam.offer(addr, est)
        assert cam.offers == len(offers)
        assert (cam.hits + cam.insertions + cam.replacements
                + cam.rejections) == cam.offers

    def test_replacement_rate_only_counts_evictions(self):
        cam = SortedCam(2)
        cam.offer(1, 5)
        cam.offer(2, 6)
        assert cam.replacement_rate == 0.0
        cam.offer(3, 9)  # one genuine eviction in three offers
        assert cam.replacement_rate == 1 / 3

    def test_replacement_rate_empty_table(self):
        assert SortedCam(2).replacement_rate == 0.0
