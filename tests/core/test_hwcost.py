"""Tests for the Table 4 hardware cost model."""

import pytest

from repro.core import hwcost


class TestCalibration:
    """The model must reproduce the paper's Table 4 points exactly."""

    @pytest.mark.parametrize("n,area,power", [
        (50, 3_649.0, 0.7),
        (100, 7_323.0, 1.3),
        (512, 36_374.0, 6.4),
        (1024, 89_369.0, 15.0),
        (2048, 179_625.0, 29.9),
    ])
    def test_space_saving_points(self, n, area, power):
        est = hwcost.estimate("space-saving", n)
        assert est.area_um2 == pytest.approx(area, rel=1e-6)
        assert est.power_mw == pytest.approx(power, rel=1e-6)

    @pytest.mark.parametrize("n,area,power", [
        (50, 1_899.0, 2.0),
        (2048, 5_346.0, 3.9),
        (32768, 46_930.0, 23.2),
        (131072, 180_530.0, 83.8),
    ])
    def test_cm_sketch_points(self, n, area, power):
        est = hwcost.estimate("cm-sketch", n)
        assert est.area_um2 == pytest.approx(area, rel=1e-6)
        assert est.power_mw == pytest.approx(power, rel=1e-6)

    def test_interpolation_monotone(self):
        a = hwcost.estimate("cm-sketch", 3000).area_um2
        b = hwcost.estimate("cm-sketch", 6000).area_um2
        assert hwcost.estimate("cm-sketch", 2048).area_um2 < a < b

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            hwcost.estimate("bloom", 64)

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ValueError):
            hwcost.estimate("cm-sketch", 0)


class TestFeasibility:
    def test_fpga_space_saving_caps_at_50(self):
        """§7.1: FPGA synthesis allows only up to 50 CAM entries."""
        assert hwcost.is_feasible("space-saving", 50, "fpga")
        assert not hwcost.is_feasible("space-saving", 51, "fpga")

    def test_fpga_cm_sketch_caps_at_128k(self):
        assert hwcost.is_feasible("cm-sketch", 128 * 1024, "fpga")
        assert not hwcost.is_feasible("cm-sketch", 256 * 1024, "fpga")

    def test_asic_space_saving_caps_at_2k(self):
        assert hwcost.is_feasible("space-saving", 2048)
        assert not hwcost.is_feasible("space-saving", 4096)

    def test_infeasible_estimate_is_none(self):
        """Table 4's blank cells."""
        assert hwcost.estimate("space-saving", 8192) is None

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            hwcost.feasible_entries("cm-sketch", "asic3nm")


class TestHeadlines:
    def test_relative_cost_at_2k(self):
        """§7.1: SS costs 33.6x area and 7.6x power of CMS at N=2K."""
        rel = hwcost.relative_cost(2048)
        assert rel["area_ratio"] == pytest.approx(33.6, rel=0.01)
        assert rel["power_ratio"] == pytest.approx(7.67, rel=0.01)

    def test_chip_overhead_tiny(self):
        """§8: the 32K tracker is ~0.01% of an 8GB module's die area."""
        frac = hwcost.chip_overhead_fraction(32 * 1024)
        assert frac < 0.001
        assert frac == pytest.approx(1e-4, rel=0.5)

    def test_max_access_rate(self):
        """One access per 2.5ns tCCD = 400MHz."""
        assert hwcost.max_access_rate_hz() == pytest.approx(400e6)

    def test_table4_rows(self):
        rows = hwcost.table4()
        assert len(rows) == 8
        last = rows[-1]
        assert last["space_saving_area_um2"] is None
        assert last["cm_sketch_area_um2"] == pytest.approx(180_530.0)
