"""Tests for the Sticky Sampling summary."""

import numpy as np
import pytest

from repro.core.stickysampling import StickySampling


class TestBasics:
    def test_tracked_items_always_counted(self):
        ss = StickySampling(support=0.5, error=0.1, seed=0)
        ss.update_one(1)  # rate 1 at the start: always admitted
        for _ in range(9):
            ss.update_one(1)
        assert ss.estimate_one(1) == 10

    def test_rate_starts_at_one(self):
        ss = StickySampling(support=0.5, error=0.1)
        assert ss.rate == 1

    def test_rate_doubles_across_epochs(self):
        ss = StickySampling(support=0.5, error=0.2, failure_prob=0.5, seed=1)
        for i in range(10 * ss._t):
            ss.update_one(i % 7)
        assert ss.rate >= 2

    def test_untracked_estimate_zero(self):
        ss = StickySampling(support=0.5, error=0.1)
        assert ss.estimate_one(99) == 0

    def test_update_batch(self):
        ss = StickySampling(support=0.5, error=0.1, seed=0)
        ss.update_batch(np.array([3, 3, 3], dtype=np.uint64))
        assert ss.estimate_one(3) == 3

    def test_reset(self):
        ss = StickySampling(support=0.5, error=0.1)
        ss.update_one(1)
        ss.reset()
        assert len(ss) == 0
        assert ss.rate == 1


class TestGuarantees:
    def test_heavy_hitter_reported(self):
        """An item above the support threshold appears in
        frequent_items with high probability."""
        rng = np.random.default_rng(0)
        stream = [7] * 5000 + rng.integers(100, 10_000, 5000).tolist()
        rng.shuffle(stream)
        ss = StickySampling(support=0.2, error=0.02, failure_prob=0.01, seed=2)
        for k in stream:
            ss.update_one(int(k))
        assert 7 in dict(ss.frequent_items())

    def test_estimates_never_exceed_truth(self):
        """Sampling admits late: counts are underestimates."""
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 30, 4000)
        ss = StickySampling(support=0.05, error=0.01, seed=3)
        for k in keys.tolist():
            ss.update_one(int(k))
        true = np.bincount(keys, minlength=30)
        for addr, est in ss.top_k(30):
            assert est <= true[addr]

    def test_top_k_sorted(self):
        ss = StickySampling(support=0.5, error=0.1, seed=0)
        for k, n in ((1, 10), (2, 4)):
            for _ in range(n):
                ss.update_one(k)
        top = ss.top_k(2)
        assert top[0][0] == 1


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StickySampling(support=0.1, error=0.2)
        with pytest.raises(ValueError):
            StickySampling(support=0.1, error=0.01, failure_prob=0.0)
