"""Tests for M5-manager: Monitor, Nominator, Elector, Promoter."""

import numpy as np
import pytest

from repro.core.manager import (
    HPT_DRIVEN,
    HPT_ONLY,
    HWT_DRIVEN,
    Elector,
    M5Manager,
    Monitor,
    MonitorSample,
    Nominator,
    Promoter,
    exp_fscale,
    power_fscale,
)
from repro.core.manager.promoter import PROC_FILE_CAPACITY, ProcFile
from repro.core.trackers import make_hpt, make_hwt
from repro.memory.migration import MigrationEngine, PinReason
from repro.memory.tiers import NodeKind, TieredMemory


def sample(nd=10, nc=10, bd=1000.0, bc=1000.0):
    return MonitorSample(nr_pages_ddr=nd, nr_pages_cxl=nc, bw_ddr=bd, bw_cxl=bc)


class TestMonitorSample:
    def test_bw_tot(self):
        assert sample(bd=3.0, bc=4.0).bw_tot == 7.0

    def test_bw_den(self):
        s = sample(nd=2, nc=4, bd=10.0, bc=10.0)
        assert s.bw_den(NodeKind.DDR) == 5.0
        assert s.bw_den(NodeKind.CXL) == 2.5

    def test_bw_den_empty_node(self):
        s = sample(nd=0, bd=0.0)
        assert s.bw_den(NodeKind.DDR) == 0.0

    def test_rel_bw_den(self):
        s = sample(nd=2, nc=4, bd=10.0, bc=10.0)
        assert s.rel_bw_den(NodeKind.DDR) == pytest.approx(5.0 / 20.0)

    def test_bw_den_ratio_cold_start_infinite(self):
        s = sample(nd=0, bd=0.0, nc=4, bc=10.0)
        assert s.bw_den_ratio() == float("inf")

    def test_bw_den_ratio_idle_is_one(self):
        s = sample(nd=0, bd=0.0, nc=4, bc=0.0)
        assert s.bw_den_ratio() == 1.0


class TestMonitor:
    def test_sample_reads_memory(self, tiered):
        mon = Monitor(tiered)
        tiered.begin_epoch(1.0)
        tiered.record_epoch_accesses(np.array([0, 1]))
        s = mon.sample()
        assert s.nr_pages_cxl == 32
        assert s.bw_cxl == pytest.approx(128.0)
        assert mon.bw(NodeKind.CXL) == s.bw_cxl

    def test_last_requires_history(self, tiered):
        mon = Monitor(tiered)
        with pytest.raises(RuntimeError):
            _ = mon.last


class TestFscale:
    def test_power_monotone(self):
        f = power_fscale(4.0)
        assert f(2.0) > f(1.0) > f(0.5)
        assert f(2.0) == pytest.approx(16.0)

    def test_power_edge_cases(self):
        f = power_fscale(3.0)
        assert f(0.0) == 0.0
        assert f(float("inf")) == float("inf")

    def test_exp_scale(self):
        f = exp_fscale(2.0)
        assert f(1.0) == pytest.approx(2.0 * np.e)

    def test_validation(self):
        with pytest.raises(ValueError):
            power_fscale(0)
        with pytest.raises(ValueError):
            exp_fscale(-1)


class TestElector:
    def test_first_step_migrates(self):
        e = Elector()
        d = e.step(0.0, sample())
        assert d is not None and d.migrate

    def test_not_due_returns_none(self):
        e = Elector(f_default=1.0)
        e.step(0.0, sample())
        assert e.step(1e-9, sample()) is None

    def test_migrates_when_rel_bw_den_rises(self):
        e = Elector(min_period_s=0.0 + 1e-6)
        e.step(0.0, sample(bd=10.0, bc=100.0))
        d = e.step(100.0, sample(bd=50.0, bc=60.0))
        assert d.migrate  # DDR's share rose

    def test_skips_when_rel_bw_den_falls(self):
        e = Elector()
        e.step(0.0, sample(bd=100.0, bc=10.0))
        # DDR's share fell AND DDR is already the denser node
        # (bw_den_ratio < 1), so neither Guideline fires.
        d = e.step(100.0, sample(bd=90.0, bc=20.0))
        assert not d.migrate

    def test_guideline1_overrides_flat_rel(self):
        """Guideline 1: keep migrating while CXL is denser, even when
        rel_bw_den(DDR) did not rise."""
        e = Elector()
        e.step(0.0, sample(bd=10.0, bc=100.0))
        d = e.step(100.0, sample(bd=10.0, bc=100.0))  # rel flat, ratio 10
        assert d.migrate

    def test_period_scales_with_bw_den_ratio(self):
        """Guideline 1: hotter CXL -> faster migration."""
        e = Elector(f_default=1.0, fscale=power_fscale(2.0),
                    min_period_s=1e-4, max_period_s=100.0)
        hot_cxl = sample(nd=10, nc=10, bd=10.0, bc=100.0)   # ratio 10
        cold_cxl = sample(nd=10, nc=10, bd=100.0, bc=10.0)  # ratio 0.1
        assert e.period_for(hot_cxl) < e.period_for(cold_cxl)

    def test_period_clamped(self):
        e = Elector(min_period_s=0.5, max_period_s=2.0)
        assert e.period_for(sample(nd=0, bd=0.0)) == 0.5   # inf ratio
        assert e.period_for(sample(bd=1e12, bc=0.0)) == 2.0

    def test_reset(self):
        e = Elector()
        e.step(0.0, sample())
        e.reset()
        assert e.evaluations == 0
        assert e.due(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Elector(f_default=0)
        with pytest.raises(ValueError):
            Elector(min_period_s=2.0, max_period_s=1.0)


class TestNominatorHptOnly:
    def test_nominates_hpt_pages_by_count(self):
        nom = Nominator(HPT_ONLY)
        nom.update_from_hpt([(10, 5), (20, 9)])
        result = nom.nominate()
        assert result.pfns == [20, 10]

    def test_hwt_input_ignored(self):
        nom = Nominator(HPT_ONLY)
        nom.update_from_hwt([(10 * 64 + 3, 7)])
        assert nom.nominate().pfns == []

    def test_nominate_consumes_state(self):
        nom = Nominator(HPT_ONLY)
        nom.update_from_hpt([(10, 5)])
        nom.nominate()
        assert nom.nominate().pfns == []

    def test_limit(self):
        nom = Nominator(HPT_ONLY)
        nom.update_from_hpt([(1, 5), (2, 9), (3, 7)])
        assert len(nom.nominate(limit=2).pfns) == 2

    def test_repeat_updates_keep_max_count(self):
        nom = Nominator(HPT_ONLY)
        nom.update_from_hpt([(1, 5)])
        nom.update_from_hpt([(1, 3)])
        assert nom.hpa[1].count == 5


class TestNominatorHptDriven:
    def test_mask_bits_set_from_hot_words(self):
        nom = Nominator(HPT_DRIVEN)
        nom.update_from_hpt([(10, 5)])
        line = 10 * 64 + 7
        nom.update_from_hwt([(line, 3)])
        assert nom.hpa[10].mask == (1 << 7)
        assert nom.density_of(10) == 1

    def test_words_of_unknown_page_dropped(self):
        nom = Nominator(HPT_DRIVEN)
        nom.update_from_hwt([(99 * 64, 3)])
        assert 99 not in nom.hpa

    def test_dense_pages_rank_first(self):
        """Guideline 3: prefer dense hot pages at similar hotness."""
        nom = Nominator(HPT_DRIVEN, min_hot_words=2)
        nom.update_from_hpt([(1, 10), (2, 10)])
        nom.update_from_hwt([(2 * 64 + w, 1) for w in range(4)])
        result = nom.nominate()
        assert result.pfns[0] == 2

    def test_requires_valid_min_words(self):
        with pytest.raises(ValueError):
            Nominator(HPT_DRIVEN, min_hot_words=100)


class TestNominatorHwtDriven:
    def test_builds_hpa_from_words_alone(self):
        nom = Nominator(HWT_DRIVEN)
        nom.update_from_hwt([(5 * 64 + 1, 4), (5 * 64 + 2, 3), (9 * 64, 1)])
        result = nom.nominate()
        assert result.pfns[0] == 5
        assert set(result.pfns) == {5, 9}

    def test_hpt_input_ignored(self):
        nom = Nominator(HWT_DRIVEN)
        nom.update_from_hpt([(77, 100)])
        assert 77 not in nom.hpa

    def test_mask_accumulates_as_count(self):
        nom = Nominator(HWT_DRIVEN)
        nom.update_from_hwt([(5 * 64, 4)])
        nom.update_from_hwt([(5 * 64 + 1, 2)])
        assert nom.hpa[5].count == 6
        assert nom.hpa[5].hot_words == 2

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Nominator("magic")


class TestPromoter:
    def make(self):
        mem = TieredMemory(ddr_pages=8, cxl_pages=32, num_logical_pages=16)
        mem.allocate_all(NodeKind.CXL)
        return mem, Promoter(mem, MigrationEngine(mem))

    def test_promote_via_proc_file(self):
        mem, prom = self.make()
        pfn = mem.frame_of_page(3)
        report = prom.promote([pfn])
        assert report.promoted == 1
        assert mem.node_of_page(3) is NodeKind.DDR
        assert prom.proc_file.writes == 1

    def test_unknown_pfn_counted(self):
        _, prom = self.make()
        report = prom.promote([123456789])
        assert report.unknown_pfn == 1
        assert report.promoted == 0

    def test_pinned_page_rejected(self):
        mem, prom = self.make()
        prom.engine.pin(np.array([3]), PinReason.DMA)
        report = prom.promote([mem.frame_of_page(3)])
        assert report.rejected == 1
        assert mem.node_of_page(3) is NodeKind.CXL

    def test_kernel_worker_drains(self):
        mem, prom = self.make()
        prom.request([mem.frame_of_page(1)])
        prom.request([mem.frame_of_page(2)])
        report = prom.run_kernel_worker()
        assert report.requested == 2
        assert not prom.proc_file.pending

    def test_totals_accumulate(self):
        mem, prom = self.make()
        prom.promote([mem.frame_of_page(1)])
        prom.promote([mem.frame_of_page(2)])
        assert prom.total.promoted == 2


class TestProcFileBound:
    def test_write_within_capacity_accepts_all(self):
        pf = ProcFile(capacity=4)
        assert pf.write([1, 2, 3]) == 3
        assert pf.pending == [1, 2, 3]
        assert pf.dropped == 0

    def test_write_truncates_at_capacity(self):
        pf = ProcFile(capacity=4)
        pf.write([1, 2, 3])
        assert pf.write([4, 5, 6]) == 1
        assert pf.pending == [1, 2, 3, 4]
        assert pf.dropped == 2

    def test_full_buffer_drops_everything(self):
        pf = ProcFile(capacity=2)
        pf.write([1, 2])
        assert pf.write([3, 4, 5]) == 0
        assert pf.dropped == 3
        assert pf.writes == 2

    def test_drain_frees_capacity(self):
        pf = ProcFile(capacity=2)
        pf.write([1, 2])
        assert pf.drain() == [1, 2]
        assert pf.write([3, 4]) == 2
        assert pf.dropped == 0

    def test_default_capacity_is_module_constant(self):
        assert ProcFile().capacity == PROC_FILE_CAPACITY

    def test_promoter_counts_drops(self):
        mem = TieredMemory(ddr_pages=8, cxl_pages=32, num_logical_pages=16)
        mem.allocate_all(NodeKind.CXL)
        prom = Promoter(mem, MigrationEngine(mem))
        prom.proc_file = ProcFile(capacity=3)
        prom.request([mem.frame_of_page(p) for p in range(5)])
        assert prom.proc_file.dropped == 2
        report = prom.run_kernel_worker()
        assert report.requested == 3


class TestM5Manager:
    def make(self, mode=HPT_ONLY, dry_run=False):
        mem = TieredMemory(ddr_pages=8, cxl_pages=64, num_logical_pages=32)
        mem.allocate_all(NodeKind.CXL)
        engine = MigrationEngine(mem)
        hpt = make_hpt(k=4, algorithm="exact")
        hwt = make_hwt(k=8, algorithm="exact") if mode != HPT_ONLY else None
        mgr = M5Manager(
            mem, engine, hpt=hpt, hwt=hwt,
            nominator=Nominator(mode),
            elector=Elector(min_period_s=1e-6),
            dry_run=dry_run,
        )
        return mem, mgr

    def feed(self, mem, mgr, pages):
        """Simulate one epoch of traffic through the trackers."""
        pfns = np.array([mem.frame_of_page(p) for p in pages], dtype=np.uint64)
        pa = pfns << np.uint64(12)
        mgr.hpt.observe(pa)
        if mgr.hwt is not None:
            mgr.hwt.observe(pa)
        mem.begin_epoch(1.0)
        mem.record_epoch_accesses(np.array(pages))

    def test_first_step_promotes_hot_pages(self):
        mem, mgr = self.make()
        self.feed(mem, mgr, [5] * 10 + [6] * 3)
        result = mgr.step(0.0)
        assert result.decision is not None
        assert result.promoted >= 1
        assert mem.node_of_page(5) is NodeKind.DDR

    def test_dry_run_nominates_without_moving(self):
        mem, mgr = self.make(dry_run=True)
        self.feed(mem, mgr, [5] * 10)
        result = mgr.step(0.0)
        assert result.nominated >= 1
        assert result.promoted == 0
        assert mem.node_of_page(5) is NodeKind.CXL
        assert mgr.nominated_history

    def test_hwt_mode_requires_hwt(self):
        mem = TieredMemory(ddr_pages=8, cxl_pages=64, num_logical_pages=32)
        mem.allocate_all(NodeKind.CXL)
        with pytest.raises(ValueError):
            M5Manager(mem, MigrationEngine(mem), hpt=make_hpt(k=4),
                      nominator=Nominator(HWT_DRIVEN))

    def test_hwt_driven_promotes_from_words(self):
        mem, mgr = self.make(mode=HWT_DRIVEN)
        self.feed(mem, mgr, [3] * 12)
        result = mgr.step(0.0)
        assert result.promoted >= 1
        assert mem.node_of_page(3) is NodeKind.DDR

    def test_overhead_charged_per_activation(self):
        mem, mgr = self.make()
        self.feed(mem, mgr, [1])
        result = mgr.step(0.0)
        assert result.overhead_us > 0
        assert mgr.cpu_overhead_us == result.overhead_us

    def test_trackers_reset_after_query(self):
        mem, mgr = self.make()
        self.feed(mem, mgr, [5] * 10)
        mgr.step(0.0)
        assert mgr.hpt.peek() == []
