"""Differential tests: the SortedCam against a brute-force reference
implementation of the Figure 5 hardware semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketch import CountMinSketch
from repro.core.topk import SortedCam


class ReferenceCam:
    """Direct transcription of the paper's CAM rules, kept naive."""

    def __init__(self, k):
        self.k = k
        self.entries = {}  # addr -> count

    def offer(self, addr, est):
        if addr in self.entries:
            self.entries[addr] = est
            return
        if len(self.entries) < self.k:
            self.entries[addr] = est
            return
        min_addr = min(self.entries, key=lambda a: self.entries[a])
        if est > self.entries[min_addr]:
            del self.entries[min_addr]
            self.entries[addr] = est


offers = st.lists(
    st.tuples(st.integers(0, 12), st.integers(1, 60)),
    min_size=1, max_size=150,
)


class TestDifferential:
    @settings(max_examples=50)
    @given(offers, st.integers(1, 6))
    def test_matches_reference(self, stream, k):
        cam = SortedCam(k)
        ref = ReferenceCam(k)
        for addr, est in stream:
            cam.offer(addr, est)
            ref.offer(addr, est)
        # Same membership and counts.  (Tie-breaking on equal minima
        # may admit different victims; both implementations use the
        # same min() choice on insertion order, so they agree.)
        assert dict(cam.entries()) == ref.entries

    @settings(max_examples=50)
    @given(offers)
    def test_tracked_set_contains_running_maximum(self, stream):
        """The address with the single largest estimate ever offered
        is always tracked at the end."""
        cam = SortedCam(3)
        best_addr, best_est = None, 0
        latest = {}
        for addr, est in stream:
            cam.offer(addr, est)
            latest[addr] = est
        # The address whose *latest* offer is the global maximum of
        # latest offers must be present.
        best_addr = max(latest, key=lambda a: latest[a])
        if latest[best_addr] > 0:
            assert best_addr in cam


class TestHardwarePipeline:
    """Sketch → CAM wiring as one pipeline (Figure 5 end to end)."""

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 40), min_size=5, max_size=400))
    def test_pipeline_tracks_true_heavy_hitter(self, keys):
        # Force one overwhelming heavy hitter.
        keys = keys + [7] * (len(keys) * 2)
        sketch = CountMinSketch(width=512, depth=4)
        cam = SortedCam(3)
        for key in keys:
            cam.offer(key, sketch.update_one(key))
        assert 7 in cam
        # Its tracked count is a CM-Sketch overestimate of the truth.
        assert cam.count_of(7) >= keys.count(7)
