"""Tests for the Space-Saving and Misra-Gries summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spacesaving import MisraGries, SpaceSaving


class TestSpaceSavingBasics:
    def test_tracks_up_to_capacity(self):
        ss = SpaceSaving(3)
        for k in (1, 2, 3):
            ss.update_one(k)
        assert len(ss) == 3
        assert 1 in ss

    def test_miss_replaces_minimum(self):
        ss = SpaceSaving(2)
        ss.update_one(1)
        ss.update_one(1)
        ss.update_one(2)
        ss.update_one(3)  # replaces 2 (count 1), inherits min+1 = 2
        assert 3 in ss
        assert 2 not in ss
        assert ss.estimate_one(3) == 2

    def test_estimate_of_untracked_zero(self):
        ss = SpaceSaving(2)
        assert ss.estimate_one(9) == 0

    def test_top_k_sorted(self):
        ss = SpaceSaving(4)
        for k, n in ((1, 5), (2, 3), (3, 8)):
            for _ in range(n):
                ss.update_one(k)
        top = ss.top_k(2)
        assert top[0] == (3, 8)
        assert top[1] == (1, 5)

    def test_weighted_update(self):
        ss = SpaceSaving(4)
        ss.update_one(5, weight=10)
        assert ss.estimate_one(5) == 10
        assert ss.items_seen == 10

    def test_reset(self):
        ss = SpaceSaving(4)
        ss.update_one(1)
        ss.reset()
        assert len(ss) == 0
        assert ss.items_seen == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)


class TestSpaceSavingGuarantees:
    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=400))
    def test_overestimate_guarantee(self, keys):
        """Tracked estimates never underestimate the true count."""
        ss = SpaceSaving(8)
        for k in keys:
            ss.update_one(k)
        true = np.bincount(keys, minlength=51)
        for addr, est in ss.top_k(8):
            assert est >= true[addr]

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=400))
    def test_error_bounded_by_n_over_m(self, keys):
        """Classic Space-Saving bound: error <= items/capacity."""
        m = 8
        ss = SpaceSaving(m)
        for k in keys:
            ss.update_one(k)
        true = np.bincount(keys, minlength=51)
        for addr, est in ss.top_k(m):
            assert est - true[addr] <= len(keys) / m

    def test_heavy_hitter_always_tracked(self):
        """An item with frequency > n/m must be in the summary."""
        rng = np.random.default_rng(0)
        noise = rng.integers(10, 1000, 900).tolist()
        stream = noise[:450] + [7] * 300 + noise[450:]
        ss = SpaceSaving(8)
        for k in stream:
            ss.update_one(k)
        assert 7 in ss

    def test_batch_matches_sequential_for_tracked(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 30, 1000).astype(np.uint64)
        seq = SpaceSaving(50)  # capacity >= cardinality: exact
        bat = SpaceSaving(50)
        for k in keys.tolist():
            seq.update_one(int(k))
        uniques, first, counts = np.unique(keys, return_index=True,
                                           return_counts=True)
        order = np.argsort(first)
        bat.update_batch(uniques[order], counts[order])
        assert dict(seq.top_k(50)) == dict(bat.top_k(50))


class TestMisraGries:
    def test_decrement_on_full_miss(self):
        mg = MisraGries(2)
        mg.update_one(1)
        mg.update_one(2)
        mg.update_one(3)  # decrements all; 1 and 2 drop to 0 -> evicted
        assert len(mg) <= 2

    def test_underestimates(self):
        """Misra-Gries is one-sided the other way: est <= true."""
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 40, 600)
        mg = MisraGries(8)
        for k in keys.tolist():
            mg.update_one(int(k))
        true = np.bincount(keys, minlength=41)
        for addr, est in mg.top_k(8):
            assert est <= true[addr]

    def test_majority_item_survives(self):
        mg = MisraGries(2)
        stream = [1] * 60 + list(range(2, 42))
        rng = np.random.default_rng(3)
        rng.shuffle(stream)
        for k in stream:
            mg.update_one(k)
        assert 1 in mg

    def test_weighted_update(self):
        mg = MisraGries(2)
        mg.update_one(1, weight=5)
        assert mg.estimate_one(1) == 5


class TestHeapBound:
    """The lazy heap must stay O(capacity), not O(stream length).

    Hits push a fresh (count, address) entry without removing the
    stale one; before the compaction bound, a hit-heavy stream grew
    the heap linearly with the trace.
    """

    def test_space_saving_hit_heavy_stream(self):
        ss = SpaceSaving(8)
        for _ in range(1000):
            for key in range(8):
                ss.update_one(key)
        assert len(ss._heap) <= ss._heap_bound
        assert ss._heap_bound == 2 * ss.capacity

    def test_misra_gries_hit_heavy_stream(self):
        mg = MisraGries(8)
        for _ in range(1000):
            for key in range(8):
                mg.update_one(key)
        assert len(mg._heap) <= mg._heap_bound

    def test_space_saving_mixed_stream_stays_bounded_and_correct(self):
        rng = np.random.default_rng(7)
        keys = rng.zipf(1.3, 20_000) % 64
        ss = SpaceSaving(16)
        for k in keys.tolist():
            ss.update_one(int(k))
        assert len(ss._heap) <= ss._heap_bound
        # Compaction must not break the summary guarantees.
        assert len(ss) <= ss.capacity
        true = np.bincount(keys.astype(np.int64), minlength=64)
        for addr, est in ss.top_k(16):
            assert est >= true[addr]

    def test_compaction_preserves_min_eviction_order(self):
        ss = SpaceSaving(4)
        # Drive enough hits to force several compactions...
        for _ in range(50):
            for key in (1, 2, 3, 4):
                ss.update_one(key)
        ss.update_one(1)  # 1 is now strictly hottest
        # ...then check a miss still evicts a true minimum (count 50).
        est = ss.update_one(99)
        assert est == 51
        assert 1 in ss and 99 in ss
