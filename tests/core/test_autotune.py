"""Tests for the adaptive (auto-tuned) Elector."""

import pytest

from repro.core.manager import AdaptiveElector, MonitorSample


def sample(bw_ddr, bw_cxl, ddr_free=0, nd=10, nc=10):
    return MonitorSample(nr_pages_ddr=nd, nr_pages_cxl=nc, bw_ddr=bw_ddr,
                         bw_cxl=bw_cxl, ddr_free_pages=ddr_free)


def make(**kw):
    defaults = dict(f_default=1.0, min_period_s=1e-3, max_period_s=10.0,
                    improvement_epsilon=1e-2)
    defaults.update(kw)
    return AdaptiveElector(**defaults)


class TestTuning:
    def test_frequency_rises_when_migration_pays(self):
        e = make()
        # First step migrates (always_first); DDR share then rises.
        e.step(0.0, sample(10.0, 100.0, ddr_free=5))
        f0 = e.f_default
        e.step(100.0, sample(60.0, 50.0, ddr_free=5))
        assert e.f_default > f0
        assert e.adjustments_up == 1

    def test_frequency_falls_when_migration_churns(self):
        e = make()
        e.step(0.0, sample(50.0, 50.0, ddr_free=5))
        f0 = e.f_default
        # Share flat after migrating: churn detected.
        e.step(100.0, sample(50.0, 50.0, ddr_free=5))
        assert e.f_default < f0
        assert e.adjustments_down == 1

    def test_no_adjustment_without_prior_migration(self):
        e = make(always_first=False)
        e.step(0.0, sample(50.0, 50.0))
        f0 = e.f_default
        e.step(100.0, sample(50.0, 50.0))
        assert e.f_default == f0

    def test_frequency_clamped(self):
        e = make(f_max=2.0, increase=10.0)
        e.step(0.0, sample(10.0, 100.0, ddr_free=5))
        e.step(100.0, sample(90.0, 20.0, ddr_free=5))
        assert e.f_default == 2.0
        e2 = make(f_min=0.5, decrease=0.01)
        e2.step(0.0, sample(50.0, 50.0, ddr_free=5))
        e2.step(100.0, sample(50.0, 50.0, ddr_free=5))
        assert e2.f_default == 0.5

    def test_higher_frequency_shortens_period(self):
        e = make()
        s = sample(50.0, 50.0)  # bw_den ratio 1 -> period in range
        before = e.period_for(s)
        e.f_default *= 4.0
        assert e.period_for(s) == pytest.approx(before / 4.0)

    def test_reset(self):
        e = make()
        e.step(0.0, sample(10.0, 100.0, ddr_free=5))
        e.step(100.0, sample(60.0, 50.0, ddr_free=5))
        e.reset()
        assert e.adjustments_up == 0
        assert not e._migrated_last_period


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveElector(f_default=1.0, f_min=2.0)
        with pytest.raises(ValueError):
            AdaptiveElector(increase=0.9)
        with pytest.raises(ValueError):
            AdaptiveElector(decrease=1.5)


class TestEndToEnd:
    def test_adaptive_manager_runs(self):
        """AdaptiveElector drops into M5Manager unchanged."""
        import numpy as np

        from repro.core.manager import M5Manager
        from repro.core.trackers import make_hpt
        from repro.memory.migration import MigrationEngine
        from repro.memory.tiers import NodeKind, TieredMemory

        mem = TieredMemory(ddr_pages=16, cxl_pages=128, num_logical_pages=64)
        mem.allocate_all(NodeKind.CXL)
        mgr = M5Manager(
            mem, MigrationEngine(mem), hpt=make_hpt(k=8, algorithm="exact"),
            elector=make(),
        )
        for t in range(5):
            pfns = np.array(
                [mem.frame_of_page(p) for p in (1, 2, 3)], dtype=np.uint64
            )
            mgr.hpt.observe(np.repeat(pfns << np.uint64(12), 20))
            mem.begin_epoch(1.0)
            mem.record_epoch_accesses(np.repeat(np.array([1, 2, 3]), 20))
            mgr.step(float(t * 10))
        assert mem.node_of_page(1) is NodeKind.DDR
