"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.memory.address import PAGE_SIZE, AddressRegion
from repro.memory.tiers import TieredMemory, NodeKind


@pytest.fixture
def small_region():
    """A 64-page device region starting at a non-zero base."""
    return AddressRegion(0x1000_0000, 64 * PAGE_SIZE)


@pytest.fixture
def tiered():
    """A small tiered memory: 16 DDR pages + 64 CXL pages, 32 logical."""
    mem = TieredMemory(ddr_pages=16, cxl_pages=64, num_logical_pages=32)
    mem.allocate_all(NodeKind.CXL)
    return mem


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def make_addresses(pfns, words=0):
    """Byte addresses for (page, word) pairs."""
    pfns = np.asarray(pfns, dtype=np.uint64)
    words = np.broadcast_to(np.asarray(words, dtype=np.uint64), pfns.shape)
    return (pfns << np.uint64(12)) | (words << np.uint64(6))
