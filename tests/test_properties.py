"""Cross-module property-based tests (hypothesis).

Module-local property tests live next to their modules; this file
holds the invariants that span modules or need richer generated
state: profiler exactness against reference counting, tracker-family
guarantees on arbitrary streams, migration-engine safety under random
command sequences, and engine accounting identities.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.trackers import CmSketchTopK, ExactTopK, SpaceSavingTopK
from repro.cxl.pac import PageAccessCounter
from repro.cxl.wac import WordAccessCounter
from repro.memory.address import PAGE_SIZE, AddressRegion
from repro.memory.migration import MigrationEngine
from repro.memory.tiers import NodeKind, TieredMemory

BASE = 0x4000_0000

addresses = st.lists(
    st.tuples(st.integers(0, 31), st.integers(0, 63)),
    min_size=1,
    max_size=400,
)


def to_pa(pairs):
    return np.array(
        [BASE + p * PAGE_SIZE + w * 64 for p, w in pairs], dtype=np.uint64
    )


class TestProfilerExactness:
    @settings(max_examples=30)
    @given(addresses)
    def test_pac_and_wac_agree_on_totals(self, pairs):
        region = AddressRegion(BASE, 32 * PAGE_SIZE)
        pac = PageAccessCounter(region, counter_bits=4)  # force spills
        wac = WordAccessCounter(region, counter_bits=2)
        pa = to_pa(pairs)
        pac.observe(pa)
        wac.observe(pa)
        assert pac.counts().sum() == len(pairs)
        assert wac.counts().sum() == len(pairs)
        # Per-page sums of WAC equal PAC counts.
        assert np.array_equal(wac.counts_by_page().sum(axis=1), pac.counts())

    @settings(max_examples=30)
    @given(addresses, st.integers(1, 6))
    def test_pac_chunking_invariant(self, pairs, num_chunks):
        """Observing in any chunking yields identical counts."""
        region = AddressRegion(BASE, 32 * PAGE_SIZE)
        whole = PageAccessCounter(region)
        split = PageAccessCounter(region)
        pa = to_pa(pairs)
        whole.observe(pa)
        for part in np.array_split(pa, num_chunks):
            split.observe(part)
        assert np.array_equal(whole.counts(), split.counts())


class TestTrackerGuarantees:
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(0, 100), min_size=10, max_size=500))
    def test_cm_sketch_tracker_counts_never_underestimate(self, pages):
        pa = (np.array(pages, dtype=np.uint64) << np.uint64(12))
        tracker = CmSketchTopK(5, num_counters=256, exact_sequence=True)
        oracle = ExactTopK(101)
        tracker.observe(pa)
        oracle.observe(pa)
        truth = dict(oracle.peek())
        for key, est in tracker.peek():
            assert est >= truth.get(key, 0)

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(0, 100), min_size=10, max_size=500))
    def test_space_saving_tracker_never_underestimates(self, pages):
        pa = (np.array(pages, dtype=np.uint64) << np.uint64(12))
        tracker = SpaceSavingTopK(5, capacity=16, exact_sequence=True)
        oracle = ExactTopK(101)
        tracker.observe(pa)
        oracle.observe(pa)
        truth = dict(oracle.peek())
        for key, est in tracker.peek():
            assert est >= truth.get(key, 0)

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    def test_exact_tracker_is_exact(self, pages):
        pa = (np.array(pages, dtype=np.uint64) << np.uint64(12))
        tracker = ExactTopK(31)
        tracker.observe(pa)
        counts = np.bincount(pages, minlength=31)
        for key, est in tracker.peek():
            assert est == counts[key]


# Random migration command streams.
commands = st.lists(
    st.tuples(
        st.sampled_from(["promote", "demote"]),
        st.lists(st.integers(0, 31), min_size=1, max_size=8),
    ),
    min_size=1,
    max_size=40,
)


class TestMigrationSafety:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(commands)
    def test_random_command_streams_preserve_invariants(self, cmds):
        mem = TieredMemory(ddr_pages=8, cxl_pages=32, num_logical_pages=32)
        mem.allocate_all(NodeKind.CXL)
        engine = MigrationEngine(mem)
        for op, pages in cmds:
            pages = np.array(pages)
            if op == "promote":
                engine.promote(pages)
            else:
                engine.demote(pages)
            engine.mglru.age()
            # Invariants after every step:
            frames = mem.frame_map[:32]
            assert len(np.unique(frames)) == 32
            assert mem.nr_pages(NodeKind.DDR) <= 8
            assert (
                mem.nr_pages(NodeKind.DDR) + mem.nr_pages(NodeKind.CXL) == 32
            )

    @settings(max_examples=20)
    @given(commands)
    def test_stats_consistent_with_placement(self, cmds):
        mem = TieredMemory(ddr_pages=8, cxl_pages=32, num_logical_pages=32)
        mem.allocate_all(NodeKind.CXL)
        engine = MigrationEngine(mem)
        for op, pages in cmds:
            if op == "promote":
                engine.promote(np.array(pages))
            else:
                engine.demote(np.array(pages))
        net = engine.stats.promoted - engine.stats.demoted
        assert mem.nr_pages(NodeKind.DDR) == net


class TestEngineAccounting:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(50_000, 150_000), st.integers(0, 3))
    def test_access_totals_always_balance(self, total, seed):
        from repro.sim import SimConfig, Simulation
        from repro.workloads import uniform_workload

        cfg = SimConfig(total_accesses=total, chunk_size=30_000,
                        ddr_pages=128, cxl_pages=1024, checkpoints=1)
        sim = Simulation(uniform_workload(footprint_pages=512, seed=seed), cfg,
                         policy="m5-hpt")
        sim.run()
        assert (
            sim.memory.ddr.accesses_total + sim.memory.cxl.accesses_total
            == total
        )
        assert sim.perf.execution_time_s >= sim.perf.app_time_s
