"""Equivalence proof for the epoch-pipeline refactor.

The goldens in ``tests/data/pipeline_goldens.json`` were captured by
running the *pre-refactor* engine (the seed's special-cased
``_baseline`` / ``_manager`` loop) for every policy in
``ALL_POLICIES`` under a fixed seed, in both identification-only and
migration mode.  The refactored pipeline must reproduce every
``RunResult`` field bit-for-bit: execution-time decomposition,
promoted/demoted counts, tier occupancy, the ratio checkpoints, and
the hot-page-list length.
"""

import json
import os

import numpy as np
import pytest

from repro.baselines import EpochPolicy, MigrationPolicy
from repro.sim import SimConfig, Simulation
from repro.sim.engine import ALL_POLICIES, run_policy
from repro.workloads import build

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), "data", "pipeline_goldens.json")

with open(GOLDENS_PATH) as fh:
    GOLDENS = json.load(fh)


def golden_config(migrate: bool, engine: str = "batched") -> SimConfig:
    """The exact configuration the goldens were captured under."""
    return SimConfig(
        total_accesses=120_000,
        chunk_size=30_000,
        ddr_pages=512,
        cxl_pages=4096,
        checkpoints=3,
        pages_per_gb=1024,
        migrate=migrate,
        engine=engine,
    )


def result_fields(result) -> dict:
    return dict(
        execution_time_s=result.execution_time_s,
        overhead_time_s=result.overhead_time_s,
        migration_time_s=result.migration_time_s,
        promoted=result.promoted,
        demoted=result.demoted,
        nr_pages_ddr=result.nr_pages_ddr,
        nr_pages_cxl=result.nr_pages_cxl,
        ratio_checkpoints=result.ratio_checkpoints,
        n_hot=len(result.hot_pfns),
    )


class TestPipelineEquivalence:
    """Both hot-path engines must reproduce the frozen goldens: the
    batched default because it is what runs, and the per-access
    reference because it is the differential-oracle baseline."""

    @pytest.mark.parametrize("engine", ["batched", "reference"])
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_identification_mode_matches_seed_engine(self, policy, engine):
        golden = GOLDENS[f"{policy}|ident"]
        result = run_policy(
            build("mcf", seed=0), policy, golden_config(False, engine)
        )
        assert result_fields(result) == golden

    @pytest.mark.parametrize("engine", ["batched", "reference"])
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_migration_mode_matches_seed_engine(self, policy, engine):
        golden = GOLDENS[f"{policy}|mig"]
        result = run_policy(
            build("mcf", seed=0), policy, golden_config(True, engine)
        )
        assert result_fields(result) == golden

    def test_goldens_cover_every_policy(self):
        covered = {key.split("|")[0] for key in GOLDENS}
        assert covered == set(ALL_POLICIES)


class TouchHottest(MigrationPolicy):
    """Minimal one-file policy: promote the epoch's most-touched pages."""

    name = "touch-hottest"

    def _detect(self, pages, now_s, epoch_s):
        self.page_table.touch(pages)
        uniq, counts = np.unique(pages, return_counts=True)
        self.record_hot(uniq[np.argsort(counts)[::-1][:8]])
        self.costs.charge(1.0, "rank")


class TestPluggablePolicies:
    """The pipeline drives any EpochPolicy, not just the built-ins."""

    def test_builtin_policies_satisfy_protocol(self):
        for policy, mode in (("anb", "_baseline"), ("m5-hpt", "_manager")):
            sim = Simulation(build("mcf", seed=0), golden_config(True), policy=policy)
            assert isinstance(sim.epoch_policy, EpochPolicy)
            assert getattr(sim, mode) is sim.epoch_policy

    def test_custom_policy_flows_through_pipeline(self):
        sim = Simulation(build("mcf", seed=0), golden_config(True), policy="none")
        sim._baseline = TouchHottest(sim.memory)
        result = sim.run()
        assert result.promoted > 0
        assert result.nr_pages_ddr > 0
        assert "rank" in result.overhead_events
        assert len(result.hot_pfns) > 0
