"""Engine-level behavior: output formats, exit codes, CLI plumbing,
and syntax-error handling."""

import json

from repro.lintkit import format_human, format_json
from repro.lintkit.engine import main

_BAD_SRC = """\
import random

x = random.random()
"""


def _write_tree(tmp_path, source=_BAD_SRC):
    target = tmp_path / "src" / "repro" / "sim" / "x.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


def test_format_json_structure(lint_tree):
    result = lint_tree(
        {"src/repro/sim/x.py": _BAD_SRC}, rules=["DET001"]
    )
    data = json.loads(format_json(result))
    assert data["version"] == 1
    assert data["summary"]["files"] == 1
    assert data["summary"]["findings"] == 1
    assert data["summary"]["by_rule"]["DET001"]["findings"] == 1
    (finding,) = data["findings"]
    assert finding["rule"] == "DET001"
    assert finding["severity"] == "error"
    assert finding["path"].endswith("x.py")
    assert finding["line"] == 3
    assert finding["fix_hint"]


def test_format_human_has_location_and_summary_line(lint_tree):
    result = lint_tree(
        {"src/repro/sim/x.py": _BAD_SRC}, rules=["DET001"]
    )
    text = format_human(result)
    assert "x.py:3:" in text
    assert "DET001" in text
    assert "lint: 1 files, 1 findings, 0 suppressed" in text


def test_main_exit_zero_on_clean_tree(tmp_path, capsys):
    _write_tree(tmp_path, "x = 1\n")
    code = main([str(tmp_path), "--root", str(tmp_path)])
    assert code == 0


def test_main_exit_one_on_findings(tmp_path, capsys):
    _write_tree(tmp_path)
    code = main([str(tmp_path), "--root", str(tmp_path)])
    assert code == 1
    assert "DET001" in capsys.readouterr().out


def test_main_exit_two_on_unknown_rule(tmp_path, capsys):
    _write_tree(tmp_path)
    code = main([str(tmp_path), "--root", str(tmp_path), "--rules", "BOGUS9"])
    assert code == 2


def test_main_list_rules_prints_catalogue(capsys):
    code = main(["--list-rules"])
    assert code == 0
    out = capsys.readouterr().out
    for rule_id in (
        "DET001", "DET002", "DET003", "DET004",
        "UNIT001", "UNIT002", "UNIT003",
        "DTYPE001",
        "DRIFT001", "DRIFT002", "DRIFT003",
        "CONC001", "CONC002", "CONC003", "CONC004",
        "CRASH001", "CRASH002", "CRASH003", "CRASH004",
        "PICKLE001", "PICKLE002",
    ):
        assert rule_id in out


def test_main_writes_json_report_to_output_file(tmp_path, capsys):
    _write_tree(tmp_path)
    report = tmp_path / "lint.json"
    code = main(
        [
            str(tmp_path),
            "--root", str(tmp_path),
            "--format", "json",
            "--output", str(report),
        ]
    )
    assert code == 1
    data = json.loads(report.read_text())
    assert data["summary"]["findings"] == 1


def test_syntax_error_becomes_parse_finding(lint_tree):
    result = lint_tree({"src/repro/sim/broken.py": "def broken(:\n"})
    assert not result.ok
    assert [f.rule for f in result.findings] == ["PARSE"]
    assert "syntax error" in result.findings[0].message
