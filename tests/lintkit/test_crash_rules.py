"""Bad/good fixture pairs for the CRASH crash-safety rule family,
plus the regression harness proving the rules guard the *real*
``service/daemon.py`` checkpoint protocol: re-introducing the bugs the
protocol fixed (in a scratch copy) must light the rules up."""

from pathlib import Path

from repro.lintkit import lint_project, load_project
from tests.lintkit.conftest import messages, rule_ids

REPO_ROOT = Path(__file__).resolve().parents[2]
CRASH = ["CRASH001", "CRASH002", "CRASH003", "CRASH004"]


# ----------------------------------------------------------------------
# CRASH001 — atomic publish


def test_crash001_flags_direct_write_to_final_checkpoint_path(lint_tree):
    result = lint_tree({
        "src/repro/svc/saver.py": """
            import json

            def write_checkpoint(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
        """,
    }, rules=["CRASH001"])
    assert rule_ids(result) == ["CRASH001"]
    (msg,) = messages(result)
    assert "torn" in msg


def test_crash001_flags_tmp_file_never_published(lint_tree):
    result = lint_tree({
        "src/repro/svc/saver.py": """
            import json

            def write_checkpoint(path, payload):
                with open(f"{path}.tmp", "w") as fh:
                    json.dump(payload, fh)
        """,
    }, rules=["CRASH001"])
    assert rule_ids(result) == ["CRASH001"]
    (msg,) = messages(result)
    assert "os.replace" in msg


def test_crash001_quiet_on_tmp_plus_replace(lint_tree):
    result = lint_tree({
        "src/repro/svc/saver.py": """
            import json
            import os

            def write_checkpoint(path, payload):
                tmp = f"{path}.tmp"
                with open(tmp, "w") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
        """,
    }, rules=["CRASH001"])
    assert result.findings == []


def test_crash001_ignores_non_checkpoint_writes(lint_tree):
    result = lint_tree({
        "src/repro/svc/plots.py": """
            def write_report(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
        """,
    }, rules=["CRASH001"])
    assert result.findings == []


# ----------------------------------------------------------------------
# CRASH002 — manifest-last ordering


_MANIFEST_FIRST = """
    import json
    import os

    def checkpoint(ckpt_dir, manifest, results):
        tmp = os.path.join(ckpt_dir, "manifest.json.tmp")
        with open(tmp, "w") as fh:
            json.dump(manifest, fh)
        os.replace(tmp, os.path.join(ckpt_dir, "manifest.json"))
        tmp2 = os.path.join(ckpt_dir, "results.json.tmp")
        with open(tmp2, "w") as fh:
            json.dump(results, fh)
        os.replace(tmp2, os.path.join(ckpt_dir, "results.json"))
"""


def test_crash002_flags_artifact_replaced_after_manifest(lint_tree):
    result = lint_tree(
        {"src/repro/svc/daemon.py": _MANIFEST_FIRST}, rules=["CRASH002"]
    )
    assert rule_ids(result) == ["CRASH002"]
    (msg,) = messages(result)
    assert "manifest" in msg


def test_crash002_quiet_when_manifest_is_last(lint_tree):
    result = lint_tree({
        "src/repro/svc/daemon.py": """
            import json
            import os

            def checkpoint(ckpt_dir, manifest, results):
                tmp2 = os.path.join(ckpt_dir, "results.json.tmp")
                with open(tmp2, "w") as fh:
                    json.dump(results, fh)
                os.replace(tmp2, os.path.join(ckpt_dir, "results.json"))
                tmp = os.path.join(ckpt_dir, "manifest.json.tmp")
                with open(tmp, "w") as fh:
                    json.dump(manifest, fh)
                os.replace(tmp, os.path.join(ckpt_dir, "manifest.json"))
        """,
    }, rules=["CRASH002"])
    assert result.findings == []


# ----------------------------------------------------------------------
# CRASH003 — fsync-before-replace (advisory note)


def test_crash003_notes_replace_without_fsync_and_never_gates(lint_tree):
    result = lint_tree({
        "src/repro/svc/saver.py": """
            import json
            import os

            def write_checkpoint(path, payload):
                tmp = f"{path}.tmp"
                with open(tmp, "w") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
        """,
    }, rules=["CRASH003"])
    assert rule_ids(result) == ["CRASH003"]
    (finding,) = result.findings
    assert finding.severity.value == "note"
    # advisory: present in the report, absent from the exit code
    assert result.ok and result.exit_code() == 0


def test_crash003_satisfied_by_fsync_in_a_helper(lint_tree):
    result = lint_tree({
        "src/repro/svc/saver.py": """
            import json
            import os

            def _sync(fh):
                fh.flush()
                os.fsync(fh.fileno())

            def write_checkpoint(path, payload):
                tmp = f"{path}.tmp"
                with open(tmp, "w") as fh:
                    json.dump(payload, fh)
                    _sync(fh)
                os.replace(tmp, path)
        """,
    }, rules=["CRASH003"])
    assert result.findings == []


# ----------------------------------------------------------------------
# CRASH004 — handle hygiene


def test_crash004_flags_open_then_unguarded_raising_call(lint_tree):
    result = lint_tree({
        "src/repro/svc/reader.py": """
            class Reader:
                def __init__(self, path):
                    self._fh = open(path, "rb")
                    self._parse_header()

                def _parse_header(self):
                    raise ValueError("bad header")
        """,
    }, rules=["CRASH004"])
    assert rule_ids(result) == ["CRASH004"]
    (msg,) = messages(result)
    assert "_parse_header" in msg and "leak" in msg


def test_crash004_quiet_when_raising_call_is_inside_try(lint_tree):
    result = lint_tree({
        "src/repro/svc/reader.py": """
            class Reader:
                def __init__(self, path):
                    self._fh = open(path, "rb")
                    try:
                        self._parse_header()
                    except Exception:
                        self._fh.close()
                        raise

                def _parse_header(self):
                    raise ValueError("bad header")
        """,
    }, rules=["CRASH004"])
    assert result.findings == []


def test_crash004_flags_inline_open_as_argument(lint_tree):
    result = lint_tree({
        "src/repro/svc/loader.py": """
            import json

            def load(path):
                return json.load(open(path))
        """,
    }, rules=["CRASH004"])
    assert rule_ids(result) == ["CRASH004"]
    (msg,) = messages(result)
    assert "json.load" in msg


def test_crash004_quiet_on_with_open(lint_tree):
    result = lint_tree({
        "src/repro/svc/loader.py": """
            import json

            def load(path):
                with open(path) as fh:
                    return json.load(fh)
        """,
    }, rules=["CRASH004"])
    assert result.findings == []


# ----------------------------------------------------------------------
# the real daemon.py, guarded: deleting the PR-9 crash-safety
# protocol from a scratch copy must be caught


def _lint_scratch_daemon(tmp_path, transform):
    source = (REPO_ROOT / "src/repro/service/daemon.py").read_text()
    mutated = transform(source)
    assert mutated != source, "transform matched nothing — daemon.py changed?"
    scratch = tmp_path / "src/repro/service/daemon.py"
    scratch.parent.mkdir(parents=True)
    scratch.write_text(mutated)
    project = load_project([str(tmp_path)], root=str(tmp_path))
    return lint_project(project, only_rules=CRASH)


def test_real_daemon_checkpoint_is_clean(tmp_path):
    result = _lint_scratch_daemon(tmp_path, lambda s: s + "\n# scratch\n")
    assert result.findings == []


def test_swapping_replace_order_breaks_manifest_last(tmp_path):
    # Re-introduce the ordering bug: manifest published before the
    # results pickle (swap the two os.replace destinations).
    def swap(source):
        return (
            source
            .replace('os.replace(tmp, ckpt_dir / "results.pkl")', "@@")
            .replace(
                'os.replace(tmp, ckpt_dir / "manifest.json")',
                'os.replace(tmp, ckpt_dir / "results.pkl")',
            )
            .replace("@@", 'os.replace(tmp, ckpt_dir / "manifest.json")')
        )

    result = _lint_scratch_daemon(tmp_path, swap)
    assert "CRASH002" in rule_ids(result)


def test_removing_fsync_is_flagged_as_advisory(tmp_path):
    result = _lint_scratch_daemon(
        tmp_path, lambda s: s.replace("os.fsync(fh.fileno())", "pass")
    )
    assert "CRASH003" in rule_ids(result)


def test_writing_manifest_directly_breaks_atomic_publish(tmp_path):
    # Re-introduce the torn-manifest bug: drop tmp + replace and land
    # the manifest straight on its final path.
    def direct(source):
        return (
            source
            .replace('tmp = ckpt_dir / "manifest.json.tmp"', "")
            .replace(
                'with open(tmp, "w", encoding="utf-8") as fh:',
                'with open(ckpt_dir / "manifest.json", "w", '
                'encoding="utf-8") as fh:',
            )
            .replace('os.replace(tmp, ckpt_dir / "manifest.json")', "")
        )

    result = _lint_scratch_daemon(tmp_path, direct)
    assert "CRASH001" in rule_ids(result)
