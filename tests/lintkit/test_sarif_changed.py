"""SARIF output structure and ``--changed`` diff-aware scoping."""

import json
import shutil
import subprocess
import textwrap

import pytest

from repro.lintkit import lint_project, load_project
from repro.lintkit.diffscope import (
    DiffScopeError,
    changed_lines,
    filter_changed,
)
from repro.lintkit.sarif import format_sarif
from tests.lintkit.conftest import build_project, rule_ids

_BAD = """
    import json

    def write_checkpoint(path, payload):
        with open(path, "w") as fh:
            json.dump(payload, fh)
"""


# ----------------------------------------------------------------------
# SARIF


def test_sarif_document_shape_and_rule_catalogue(lint_tree):
    result = lint_tree(
        {"src/repro/svc/saver.py": _BAD}, rules=["CRASH001"]
    )
    doc = json.loads(format_sarif(result))
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    rules = run["tool"]["driver"]["rules"]
    ids = [r["id"] for r in rules]
    # full catalogue ships regardless of which rules fired
    for expected in ("DET001", "CONC001", "CRASH003", "PICKLE001",
                     "SUP001", "PARSE"):
        assert expected in ids
    (res,) = run["results"]
    assert res["ruleId"] == "CRASH001"
    assert res["level"] == "error"
    assert res["ruleIndex"] == ids.index("CRASH001")
    loc = res["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/svc/saver.py"
    assert loc["region"]["startLine"] >= 1
    assert loc["region"]["startColumn"] >= 1


def test_sarif_levels_map_severities(lint_tree):
    result = lint_tree({
        "src/repro/svc/saver.py": """
            import json
            import os

            def write_checkpoint(path, payload):
                tmp = f"{path}.tmp"
                with open(tmp, "w") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
        """,
    }, rules=["CRASH003"])
    doc = json.loads(format_sarif(result))
    (res,) = doc["runs"][0]["results"]
    assert res["level"] == "note"


# ----------------------------------------------------------------------
# --changed


GIT = shutil.which("git")
needs_git = pytest.mark.skipif(GIT is None, reason="git unavailable")


def _git(cwd, *args):
    subprocess.run(
        [GIT, *args], cwd=cwd, check=True, capture_output=True,
        env={"HOME": str(cwd), "PATH": "/usr/bin:/bin:/usr/local/bin",
             "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
             "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
    )


@needs_git
def test_changed_keeps_only_findings_on_touched_lines(tmp_path):
    # atomically published but never fsynced: carries a pre-existing
    # CRASH003 note on the os.replace line
    clean = textwrap.dedent("""
        import json
        import os

        def write_checkpoint(path, payload):
            tmp = f"{path}.tmp"
            with open(tmp, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
    """)
    target = tmp_path / "src/repro/svc/saver.py"
    target.parent.mkdir(parents=True)
    target.write_text(clean)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "clean")
    # introduce a CRASH001 direct write in a NEW function, leaving a
    # pre-existing (hypothetical) finding zone untouched
    target.write_text(clean + textwrap.dedent("""
        def write_checkpoint_v2(path, payload):
            with open(path, "w") as fh:
                json.dump(payload, fh)
    """))
    project = load_project([str(tmp_path)], root=str(tmp_path))
    result = lint_project(project, only_rules=["CRASH001", "CRASH003"])
    assert rule_ids(result) == ["CRASH001", "CRASH003"]

    scoped = filter_changed(result, str(tmp_path), "HEAD")
    # CRASH001 sits on an added line; the CRASH003 note points at the
    # pre-existing os.replace line and is scoped out
    assert rule_ids(scoped) == ["CRASH001"]
    assert scoped.summary.findings == 1


@needs_git
def test_changed_lines_parses_hunks(tmp_path):
    target = tmp_path / "a.py"
    target.write_text("x = 1\ny = 2\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "base")
    target.write_text("x = 1\ny = 3\nz = 4\n")
    scope = changed_lines(str(tmp_path), "HEAD")
    assert scope == {"a.py": {2, 3}}


@needs_git
def test_changed_bad_ref_raises_diffscope_error(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "base")
    with pytest.raises(DiffScopeError):
        changed_lines(str(tmp_path), "no-such-ref")


def test_changed_outside_git_raises_diffscope_error(tmp_path):
    project = build_project(tmp_path, {"src/repro/a.py": "x = 1\n"})
    result = lint_project(project, only_rules=["CRASH001"])
    probe = tmp_path / "not-a-repo"
    probe.mkdir()
    with pytest.raises(DiffScopeError):
        filter_changed(result, str(probe), "HEAD")
