"""Fixture tests for the determinism rules DET001-DET004.

Every rule gets at least one bad snippet that must flag and one good
snippet that must pass, per the acceptance criteria.
"""

from tests.lintkit.conftest import rule_ids


# ---------------------------------------------------------------------------
# DET001: global-state RNG draws


def test_det001_flags_stdlib_and_numpy_global_rng(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/jitter.py": """\
                import random

                import numpy as np


                def jitter():
                    return random.random() + np.random.randint(4)
                """
        },
        rules=["DET001"],
    )
    assert rule_ids(result) == ["DET001"]
    assert len(result.findings) == 2
    texts = sorted(f.message for f in result.findings)
    assert any("random.random()" in t for t in texts)
    assert any("RandomState singleton" in t for t in texts)


def test_det001_passes_seeded_generator_draws(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/jitter.py": """\
                import numpy as np


                def jitter(seed):
                    rng = np.random.default_rng(seed)
                    return rng.integers(0, 4)
                """
        },
        rules=["DET001"],
    )
    assert result.ok


# ---------------------------------------------------------------------------
# DET002: wall-clock reads in simulation layers


_CLOCK_SRC = """\
    import time


    def stamp():
        return time.time()
    """


def test_det002_flags_wall_clock_in_sim_layer(lint_tree):
    result = lint_tree(
        {"src/repro/sim/clock.py": _CLOCK_SRC}, rules=["DET002"]
    )
    assert rule_ids(result) == ["DET002"]


def test_det002_flags_from_import_alias(lint_tree):
    result = lint_tree(
        {
            "src/repro/cxl/clock.py": """\
                from time import perf_counter


                def stamp():
                    return perf_counter()
                """
        },
        rules=["DET002"],
    )
    assert rule_ids(result) == ["DET002"]


def test_det002_ignores_observability_layer(lint_tree):
    result = lint_tree(
        {"src/repro/obs/clock.py": _CLOCK_SRC}, rules=["DET002"]
    )
    assert result.ok


def test_det002_ignores_non_sim_layers(lint_tree):
    result = lint_tree(
        {"src/repro/analysis/clock.py": _CLOCK_SRC}, rules=["DET002"]
    )
    assert result.ok


# ---------------------------------------------------------------------------
# DET003: iteration-order dependence on sets


def test_det003_flags_iterating_set_literal(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/order.py": """\
                def order():
                    out = []
                    for x in {3, 1, 2}:
                        out.append(x)
                    return out
                """
        },
        rules=["DET003"],
    )
    assert rule_ids(result) == ["DET003"]


def test_det003_flags_materializing_set_valued_name(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/order.py": """\
                def collect(items):
                    seen = set()
                    for it in items:
                        seen.add(it)
                    return list(seen)
                """
        },
        rules=["DET003"],
    )
    assert rule_ids(result) == ["DET003"]


def test_det003_flags_set_algebra(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/order.py": """\
                def union(a, b):
                    left = set(a)
                    right = set(b)
                    return list(left | right)
                """
        },
        rules=["DET003"],
    )
    assert rule_ids(result) == ["DET003"]


def test_det003_passes_sorted_sets(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/order.py": """\
                def collect(items):
                    seen = set()
                    for it in items:
                        seen.add(it)
                    for x in sorted({3, 1, 2}):
                        seen.add(x)
                    return sorted(seen)
                """
        },
        rules=["DET003"],
    )
    assert result.ok


# ---------------------------------------------------------------------------
# DET004: RNG constructors must be seeded from a seed-derived value


def test_det004_flags_unseeded_constructor(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/rng.py": """\
                import numpy as np

                rng = np.random.default_rng()
                """
        },
        rules=["DET004"],
    )
    assert rule_ids(result) == ["DET004"]
    assert "OS entropy" in result.findings[0].message


def test_det004_flags_seed_not_derived_from_experiment_seed(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/rng.py": """\
                import numpy as np

                rng = np.random.default_rng(12345)
                """
        },
        rules=["DET004"],
    )
    assert rule_ids(result) == ["DET004"]
    assert "not derived" in result.findings[0].message


def test_det004_passes_seed_derived_expressions(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/rng.py": """\
                import numpy as np


                def make(config, base_seed):
                    a = np.random.default_rng(config.seed)
                    b = np.random.default_rng(base_seed + 3)
                    c = np.random.default_rng(np.random.SeedSequence(base_seed))
                    return a, b, c
                """
        },
        rules=["DET004"],
    )
    assert result.ok
