"""Fixture tests for DTYPE001: narrow-int accumulation in ``cxl/``.

PAC/WAC SRAM counters are deliberately narrow (the L-bit spill model);
any narrow numpy integer array that is accumulated into inside
``repro/cxl/`` must handle saturation explicitly.
"""

from tests.lintkit.conftest import rule_ids

_BAD_COUNTER = """\
    import numpy as np


    class Pac:
        def __init__(self):
            self._sram = np.zeros(64, dtype=np.uint16)

        def observe(self, idx):
            self._sram[idx] += 1
    """


def test_dtype001_flags_unhandled_narrow_accumulation(lint_tree):
    result = lint_tree(
        {"src/repro/cxl/pac.py": _BAD_COUNTER}, rules=["DTYPE001"]
    )
    assert rule_ids(result) == ["DTYPE001"]
    assert "narrow integer dtype" in result.findings[0].message


def test_dtype001_only_applies_to_cxl_layer(lint_tree):
    result = lint_tree(
        {"src/repro/sim/pac.py": _BAD_COUNTER}, rules=["DTYPE001"]
    )
    assert result.ok


def test_dtype001_passes_saturation_handling(lint_tree):
    result = lint_tree(
        {
            "src/repro/cxl/pac.py": """\
                import numpy as np


                class Pac:
                    def __init__(self):
                        self._sram = np.zeros(64, dtype=np.uint16)

                    def observe(self, idx):
                        self._sram[idx] += 1
                        overflow = self._sram[idx] == 0
                        return overflow
                """
        },
        rules=["DTYPE001"],
    )
    assert result.ok


def test_dtype001_passes_modulo_wraparound(lint_tree):
    result = lint_tree(
        {
            "src/repro/cxl/pac.py": """\
                import numpy as np


                class Pac:
                    def __init__(self):
                        self._sram = np.zeros(64, dtype=np.uint16)

                    def observe(self, idx, value):
                        self._sram[idx] += value % 256
                """
        },
        rules=["DTYPE001"],
    )
    assert result.ok


def test_dtype001_passes_wide_dtypes(lint_tree):
    result = lint_tree(
        {
            "src/repro/cxl/pac.py": """\
                import numpy as np


                class Pac:
                    def __init__(self):
                        self._table = np.zeros(64, dtype=np.int64)

                    def observe(self, idx):
                        self._table[idx] += 1
                """
        },
        rules=["DTYPE001"],
    )
    assert result.ok


def test_dtype001_flags_ufunc_add_at(lint_tree):
    result = lint_tree(
        {
            "src/repro/cxl/wac.py": """\
                import numpy as np

                counts = np.zeros(8, dtype=np.uint8)


                def bulk(idx):
                    np.add.at(counts, idx, 1)
                """
        },
        rules=["DTYPE001"],
    )
    assert rule_ids(result) == ["DTYPE001"]
