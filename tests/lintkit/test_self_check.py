"""Self-check: the real source tree must lint clean, within the
checked-in suppression budget (acceptance: ``repro lint`` exits 0 on
``src/`` with at most 10 suppressions)."""

from pathlib import Path

from repro.lintkit import format_human, lint_project, load_project
from repro.lintkit.suppressions import count_disable_comments

REPO_ROOT = Path(__file__).resolve().parents[2]

SUPPRESSION_BUDGET = 10


def test_src_tree_lints_clean():
    project = load_project([str(REPO_ROOT / "src")], root=str(REPO_ROOT))
    result = lint_project(project)
    assert result.ok, "\n" + format_human(result)


def test_src_suppression_budget():
    total = 0
    offenders = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        count = count_disable_comments(path.read_text())
        if count:
            offenders.append((str(path.relative_to(REPO_ROOT)), count))
            total += count
    assert total <= SUPPRESSION_BUDGET, offenders


def test_tools_and_examples_lint_clean():
    paths = [str(REPO_ROOT / "tools"), str(REPO_ROOT / "examples")]
    project = load_project(paths, root=str(REPO_ROOT))
    result = lint_project(project)
    assert result.ok, "\n" + format_human(result)
