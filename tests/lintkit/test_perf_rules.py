"""Fixture tests for PERF001: `.tolist()` iteration in hot layers.

The epoch hot path is vectorized; a ``for`` loop over ``arr.tolist()``
in ``sim/``/``cxl/``/``memory/``/``core/`` reintroduces per-access
Python iteration.  The sanctioned escape is a ``*_reference``
differential-oracle kernel; everything else needs a fix or an
explicit suppression.
"""

from tests.lintkit.conftest import rule_ids

_HOT_LOOP = """\
    import numpy as np


    def observe(pages):
        total = 0
        for page in pages.tolist():
            total += page
        return total
    """


def test_perf001_flags_tolist_loop_in_hot_layer(lint_tree):
    result = lint_tree({"src/repro/cxl/pac.py": _HOT_LOOP}, rules=["PERF001"])
    assert rule_ids(result) == ["PERF001"]
    assert "element-by-element" in result.findings[0].message


def test_perf001_covers_every_hot_layer(lint_tree):
    for layer in ("sim", "cxl", "memory", "core"):
        result = lint_tree(
            {f"src/repro/{layer}/mod.py": _HOT_LOOP}, rules=["PERF001"]
        )
        assert rule_ids(result) == ["PERF001"], layer


def test_perf001_ignores_cold_layers(lint_tree):
    for layer in ("baselines", "workloads", "obs"):
        result = lint_tree(
            {f"src/repro/{layer}/mod.py": _HOT_LOOP}, rules=["PERF001"]
        )
        assert result.ok, layer


def test_perf001_exempts_reference_kernels(lint_tree):
    result = lint_tree(
        {
            "src/repro/memory/mglru.py": """\
                def _record_accesses_reference(pages):
                    for page in pages.tolist():
                        print(page)
                """
        },
        rules=["PERF001"],
    )
    assert result.ok


def test_perf001_exempts_nested_defs_inside_reference(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/topk.py": """\
                def _offer_reference(self, keys):
                    def inner():
                        for key in keys.tolist():
                            yield key
                    return list(inner())
                """
        },
        rules=["PERF001"],
    )
    assert result.ok


def test_perf001_flags_comprehensions(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/engine.py": """\
                def fan_out(pages):
                    return [p + 1 for p in pages.tolist()]
                """
        },
        rules=["PERF001"],
    )
    assert rule_ids(result) == ["PERF001"]


def test_perf001_allows_non_iterating_tolist(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/bulk.py": """\
                def snapshot(arr, mapping):
                    mapping.update(zip(arr.tolist(), arr.tolist()))
                    return set(arr.tolist())
                """
        },
        rules=["PERF001"],
    )
    assert result.ok


def test_perf001_respects_suppression(lint_tree):
    result = lint_tree(
        {
            "src/repro/memory/ifmm.py": """\
                def access(words):
                    # lint: disable=PERF001 -- sequential slot state
                    for word in words.tolist():
                        print(word)
                """
        },
        rules=["PERF001"],
    )
    assert result.ok
    assert result.summary.suppressed == 1
