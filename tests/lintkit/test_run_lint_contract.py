"""The ``tools/run_lint.py`` CI contract, exercised as a subprocess:
exit codes 0/1/2, JSON report severities (including the non-gating
``note`` tier), and the SARIF/--changed flags riding through the
shared argument surface."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
RUN_LINT = REPO_ROOT / "tools" / "run_lint.py"

_GATING = """
    import json

    def write_checkpoint(path, payload):
        with open(path, "w") as fh:
            json.dump(payload, fh)
"""

_NOTE_ONLY = """
    import json
    import os

    def write_checkpoint(path, payload):
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
"""


def run_lint(tmp_path, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(RUN_LINT), str(tmp_path),
         "--root", str(tmp_path), *args],
        capture_output=True, text=True, env=env,
    )


def write_tree(tmp_path, source):
    target = tmp_path / "src" / "repro" / "svc" / "saver.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))


def test_exit_zero_on_clean_tree(tmp_path):
    write_tree(tmp_path, "x = 1\n")
    proc = run_lint(tmp_path)
    assert proc.returncode == 0, proc.stderr


def test_exit_one_on_gating_finding(tmp_path):
    write_tree(tmp_path, _GATING)
    proc = run_lint(tmp_path, "--rules", "CRASH001")
    assert proc.returncode == 1
    assert "CRASH001" in proc.stdout


def test_exit_two_on_unknown_rule(tmp_path):
    write_tree(tmp_path, "x = 1\n")
    proc = run_lint(tmp_path, "--rules", "NOPE001")
    assert proc.returncode == 2
    assert "NOPE001" in proc.stderr


def test_note_findings_report_but_do_not_gate(tmp_path):
    write_tree(tmp_path, _NOTE_ONLY)
    proc = run_lint(tmp_path, "--rules", "CRASH003", "--format", "json")
    # the note is in the report...
    data = json.loads(proc.stdout)
    (finding,) = data["findings"]
    assert finding["rule"] == "CRASH003"
    assert finding["severity"] == "note"
    # ...but does not fail the run
    assert proc.returncode == 0, proc.stderr


def test_json_severities_cover_all_tiers(tmp_path):
    write_tree(tmp_path, _GATING + _NOTE_ONLY.replace(
        "write_checkpoint", "write_checkpoint_v2"
    ))
    proc = run_lint(
        tmp_path, "--rules", "CRASH001,CRASH003", "--format", "json"
    )
    assert proc.returncode == 1
    data = json.loads(proc.stdout)
    severities = {f["severity"] for f in data["findings"]}
    assert severities == {"error", "note"}


def test_sarif_format_flag_round_trips(tmp_path):
    write_tree(tmp_path, _GATING)
    proc = run_lint(tmp_path, "--rules", "CRASH001", "--format", "sarif")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"][0]["ruleId"] == "CRASH001"


def test_changed_with_bad_ref_exits_two(tmp_path):
    write_tree(tmp_path, _GATING)
    proc = run_lint(tmp_path, "--changed", "no-such-ref")
    assert proc.returncode == 2
    assert "no-such-ref" in proc.stderr


_SUPPRESSED = """
    import json

    def write_checkpoint(path, payload):
        with open(path, "w") as fh:  # lint: disable=CRASH001 -- test rig
            json.dump(payload, fh)
"""


def test_suppression_budget_gates_when_exceeded(tmp_path):
    write_tree(tmp_path, _SUPPRESSED)
    # Under budget: the suppression silences the finding, exit 0.
    proc = run_lint(tmp_path, "--rules", "CRASH001", "--max-suppressions", "1")
    assert proc.returncode == 0, proc.stderr
    # Budget zero: the same tree fails with a budget message.
    proc = run_lint(tmp_path, "--rules", "CRASH001", "--max-suppressions", "0")
    assert proc.returncode == 1
    assert "suppression budget exceeded" in proc.stderr
