"""Unit tests for the project model: symbol table, summaries, and
call-graph/reachability queries, on synthetic fake-project trees."""

import pytest

from repro.lintkit.model import get_model, module_name_for
from tests.lintkit.conftest import build_project


def model_of(tmp_path, files):
    return get_model(build_project(tmp_path, files))


# ----------------------------------------------------------------------
# naming and indexing


@pytest.mark.parametrize(
    "rel,expected",
    [
        ("src/repro/sim/engine.py", "repro.sim.engine"),
        ("src/repro/obs/__init__.py", "repro.obs"),
        ("tools/run_lint.py", "tools.run_lint"),
        ("examples/demo.py", "examples.demo"),
    ],
)
def test_module_name_for(rel, expected):
    assert module_name_for(rel) == expected


def test_symbol_table_indexes_defs(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/sim/thing.py": """
            def helper():
                return 1

            class Widget:
                def __init__(self):
                    self.n = 0

                def bump(self):
                    self.n += 1
        """,
    })
    assert "repro.sim.thing" in model.modules
    widget = model.classes["repro.sim.thing.Widget"]
    assert set(widget.methods) == {"__init__", "bump"}
    assert "repro.sim.thing.helper" in model.functions
    assert model.functions["repro.sim.thing.Widget.bump"].owner is widget


def test_method_resolution_follows_project_bases(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/base.py": """
            class Base:
                def shared(self):
                    return 1
        """,
        "src/repro/a/child.py": """
            from repro.a.base import Base

            class Child(Base):
                pass
        """,
    })
    child = model.classes["repro.a.child.Child"]
    shared = model.method_of(child, "shared")
    assert shared is not None
    assert shared.qualname == "repro.a.base.Base.shared"
    base = model.classes["repro.a.base.Base"]
    assert [c.qualname for c in model.subclasses_of(base)] == [
        "repro.a.child.Child"
    ]


def test_cross_module_call_resolution_via_alias(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/util.py": """
            def work():
                return 2
        """,
        "src/repro/a/main.py": """
            from repro.a import util

            def entry():
                return util.work()
        """,
    })
    entry = model.functions["repro.a.main.entry"]
    assert ["repro.a.util.work"] == [
        c for site in entry.calls for c in site.candidates
    ]


# ----------------------------------------------------------------------
# summaries


def test_lock_regions_and_attr_write_kinds(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/locked.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def locked_add(self, n):
                    with self._lock:
                        self.total += n

                def racy_add(self, n):
                    self.total += n

                def rebind(self):
                    self.total = 0
        """,
    })
    box = model.classes["repro.a.locked.Box"]
    assert box.lock_attrs == {"_lock"}
    by_method = {
        m: [(w.attr, w.kind, w.lock_depth) for w in f.attr_writes]
        for m, f in box.methods.items()
    }
    assert by_method["locked_add"] == [("total", "mutate", 1)]
    assert by_method["racy_add"] == [("total", "mutate", 0)]
    assert by_method["rebind"] == [("total", "rebind", 0)]


def test_durable_write_tokens_expand_locals(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/saver.py": """
            import os

            def save(path):
                tmp = f"{path}.tmp"
                with open(tmp, "wb") as fh:
                    fh.write(b"x")
                os.replace(tmp, path)
        """,
    })
    save = model.functions["repro.a.saver.save"]
    (write,) = save.durable_writes
    assert write.via == "open"
    assert any("tmp" in t for t in write.path_tokens)
    (replace,) = save.replaces
    assert any("tmp" in t for t in replace.src_tokens)


def test_nested_defs_do_not_inherit_lock_context(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/nested.py": """
            import time

            class Box:
                def outer(self):
                    with self._lock:
                        def later():
                            time.sleep(1)
                        return later
        """,
    })
    outer = model.functions["repro.a.nested.Box.outer"]
    # the sleep belongs to the nested def, not to the lock region
    assert outer.blocking_sites == []
    later = model.functions["repro.a.nested.Box.outer.later"]
    assert len(later.blocking_sites) == 1


# ----------------------------------------------------------------------
# graph queries


def test_blocking_fixpoint_carries_call_chain(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/chain.py": """
            import time

            def leaf():
                time.sleep(0.1)

            def mid():
                leaf()

            def top():
                mid()
        """,
    })
    q = model.queries
    assert q.blocking_reason("repro.a.chain.leaf") == "time.sleep"
    top_reason = q.blocking_reason("repro.a.chain.top")
    assert "time.sleep" in top_reason and "mid" in top_reason
    assert q.blocking_reason("repro.a.chain.top_missing") is None


def test_fsync_fixpoint_is_transitive(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/sync.py": """
            import os

            def flush(fh):
                os.fsync(fh.fileno())

            def checkpoint(fh):
                flush(fh)

            def never():
                pass
        """,
    })
    q = model.queries
    assert q.calls_fsync("repro.a.sync.flush")
    assert q.calls_fsync("repro.a.sync.checkpoint")
    assert not q.calls_fsync("repro.a.sync.never")


def test_pickle_roots_bare_self_and_attr_payloads(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/ckpt.py": """
            import pickle

            class Inner:
                pass

            class Holder:
                def __init__(self):
                    self.inner = Inner()
                    self.counts = {}

                def save_state(self, fh):
                    payload = {"sim": self, "n": 1}
                    pickle.dump(payload, fh)

                def save_partial(self, fh):
                    pickle.dump(self.counts, fh)
        """,
    })
    roots = model.queries.pickle_roots()
    root_quals = sorted({cls.qualname for cls, _ in roots})
    # save_state pickles bare self => Holder is a root; save_partial
    # pickles only a dict attribute => no extra class root.
    assert root_quals == ["repro.a.ckpt.Holder"]


def test_reachable_classes_provenance_and_custom_pickle_opacity(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/graph.py": """
            import pickle

            class Leaf:
                pass

            class Opaque:
                def __init__(self):
                    self.leaf = Leaf()

                def __getstate__(self):
                    return {}

            class Mid:
                def __init__(self):
                    self.opaque = Opaque()

            class Root:
                def __init__(self):
                    self.mid = Mid()

                def save_state(self, fh):
                    pickle.dump(self, fh)
        """,
    })
    reach = model.queries.reachable_classes(model.queries.pickle_roots())
    assert "repro.a.graph.Root" in reach
    assert "repro.a.graph.Mid" in reach
    assert "repro.a.graph.Opaque" in reach
    # Opaque rewrites its own payload: Leaf is never traversed.
    assert "repro.a.graph.Leaf" not in reach
    assert "Root.mid" in reach["repro.a.graph.Mid"]
    assert "Mid.opaque" in reach["repro.a.graph.Opaque"]


def test_reachable_classes_subclass_closure(tmp_path):
    model = model_of(tmp_path, {
        "src/repro/a/subs.py": """
            import pickle

            class Sink:
                pass

            class FileSink(Sink):
                pass

            class Root:
                def __init__(self, sink: Sink):
                    self.sink = sink

                def save_state(self, fh):
                    pickle.dump(self, fh)
        """,
    })
    reach = model.queries.reachable_classes(model.queries.pickle_roots())
    # the attribute is typed as the base: any subclass may be inside
    assert "repro.a.subs.FileSink" in reach
    assert "subclass FileSink" in reach["repro.a.subs.FileSink"]


def test_model_is_cached_per_project(tmp_path):
    project = build_project(tmp_path, {
        "src/repro/a/one.py": "def f():\n    return 1\n",
    })
    assert get_model(project) is get_model(project)
