"""Fixture tests for the registry-drift rules DRIFT001-DRIFT003.

Each fixture tree carries stub ``repro/sim/config.py`` /
``repro/cli.py`` modules: the config module doubles as the
"full-tree" proxy that arms the reverse (documented-but-gone) diffs.
"""

import json

from repro.lintkit.rules.drift import update_registries
from tests.lintkit.conftest import rule_ids

_CONFIG_SRC = """\
    from dataclasses import dataclass


    @dataclass
    class SimConfig:
        num_pages: int = 64
        seed: int = 0
    """

_CLI_SRC = """\
    import argparse


    def build():
        parser = argparse.ArgumentParser()
        parser.add_argument("--num-pages", type=int)
        return parser
    """

_GOOD_CONFIG_REGISTRY = {
    "fields": {
        "num_pages": {"flag": "--num-pages"},
        "seed": {"exempt": "fixed by the harness"},
    }
}


def _tree(extra=None):
    files = {
        "src/repro/sim/config.py": _CONFIG_SRC,
        "src/repro/cli.py": _CLI_SRC,
    }
    if extra:
        files.update(extra)
    return files


# ---------------------------------------------------------------------------
# DRIFT001: SimConfig vs CLI flags vs config_cli.json


def test_drift001_passes_complete_registry(lint_tree):
    result = lint_tree(
        _tree(),
        rules=["DRIFT001"],
        registries={"config_cli.json": _GOOD_CONFIG_REGISTRY},
    )
    assert result.ok


def test_drift001_flags_missing_registry_file(lint_tree):
    result = lint_tree(_tree(), rules=["DRIFT001"])
    assert rule_ids(result) == ["DRIFT001"]
    assert "is missing" in result.findings[0].message


def test_drift001_flags_undocumented_field(lint_tree):
    registry = {"fields": {"num_pages": {"flag": "--num-pages"}}}
    result = lint_tree(
        _tree(), rules=["DRIFT001"], registries={"config_cli.json": registry}
    )
    assert rule_ids(result) == ["DRIFT001"]
    assert "SimConfig.seed has no entry" in result.findings[0].message
    # The finding anchors at the field's definition in config.py.
    assert result.findings[0].path.endswith("repro/sim/config.py")


def test_drift001_flags_entry_with_flag_and_exempt(lint_tree):
    registry = {
        "fields": {
            "num_pages": {"flag": "--num-pages", "exempt": "both?"},
            "seed": {"exempt": "fixed"},
        }
    }
    result = lint_tree(
        _tree(), rules=["DRIFT001"], registries={"config_cli.json": registry}
    )
    assert any("exactly one of" in f.message for f in result.findings)


def test_drift001_flags_flag_not_defined_in_cli(lint_tree):
    registry = {
        "fields": {
            "num_pages": {"flag": "--pages"},
            "seed": {"exempt": "fixed"},
        }
    }
    result = lint_tree(
        _tree(), rules=["DRIFT001"], registries={"config_cli.json": registry}
    )
    assert any("no such flag" in f.message for f in result.findings)


def test_drift001_flags_stale_registry_entry(lint_tree):
    registry = {
        "fields": {**_GOOD_CONFIG_REGISTRY["fields"], "ghost": {"exempt": "?"}}
    }
    result = lint_tree(
        _tree(), rules=["DRIFT001"], registries={"config_cli.json": registry}
    )
    assert any("no such field" in f.message for f in result.findings)


def test_drift001_quiet_without_config_module(lint_tree):
    result = lint_tree(
        {"src/repro/sim/other.py": "x = 1\n"}, rules=["DRIFT001"]
    )
    assert result.ok


# ---------------------------------------------------------------------------
# DRIFT002: telemetry event names vs telemetry_events.json

_PUBLISHER = """\
    def run(bus):
        bus.publish("epoch", 0, 0.0)
    """


def test_drift002_passes_documented_events(lint_tree):
    result = lint_tree(
        _tree({"src/repro/sim/telemetry_use.py": _PUBLISHER}),
        rules=["DRIFT002"],
        registries={"telemetry_events.json": {"events": {"epoch": "per-epoch"}}},
    )
    assert result.ok


def test_drift002_flags_undocumented_event_at_emit_site(lint_tree):
    result = lint_tree(
        _tree({"src/repro/sim/telemetry_use.py": _PUBLISHER}),
        rules=["DRIFT002"],
        registries={"telemetry_events.json": {"events": {}}},
    )
    assert rule_ids(result) == ["DRIFT002"]
    finding = result.findings[0]
    assert "`epoch`" in finding.message and "missing from" in finding.message
    assert finding.path.endswith("telemetry_use.py")


def test_drift002_flags_documented_but_unemitted_event(lint_tree):
    result = lint_tree(
        _tree({"src/repro/sim/telemetry_use.py": _PUBLISHER}),
        rules=["DRIFT002"],
        registries={
            "telemetry_events.json": {
                "events": {"epoch": "ok", "ghost.event": "gone"}
            }
        },
    )
    assert any("no longer emitted" in f.message for f in result.findings)


def test_drift002_quiet_on_fixture_subtrees(lint_tree):
    # No publish calls and no config module: a partial tree, stay quiet.
    result = lint_tree({"src/repro/core/thing.py": "x = 1\n"}, rules=["DRIFT002"])
    assert result.ok


# ---------------------------------------------------------------------------
# DRIFT003: metric family names vs metric_families.json

_INSTRUMENTS = """\
    def wire(registry):
        registry.counter("pages_moved_total", "Pages moved")
        registry.gauge("queue_depth", "Queue depth")
    """


def test_drift003_passes_documented_families(lint_tree):
    result = lint_tree(
        _tree({"src/repro/sim/metrics_use.py": _INSTRUMENTS}),
        rules=["DRIFT003"],
        registries={
            "metric_families.json": {
                "families": {"pages_moved_total": "a", "queue_depth": "b"}
            }
        },
    )
    assert result.ok


def test_drift003_flags_undocumented_family(lint_tree):
    result = lint_tree(
        _tree({"src/repro/sim/metrics_use.py": _INSTRUMENTS}),
        rules=["DRIFT003"],
        registries={
            "metric_families.json": {"families": {"queue_depth": "b"}}
        },
    )
    assert rule_ids(result) == ["DRIFT003"]
    assert "`pages_moved_total`" in result.findings[0].message


def test_drift003_flags_missing_registry_file(lint_tree):
    result = lint_tree(
        _tree({"src/repro/sim/metrics_use.py": _INSTRUMENTS}),
        rules=["DRIFT003"],
    )
    assert rule_ids(result) == ["DRIFT003"]
    assert "is missing" in result.findings[0].message


# ---------------------------------------------------------------------------
# --update-registries regeneration


def test_update_registries_writes_and_preserves_descriptions(
    make_project, tmp_path
):
    project = make_project(
        _tree(
            {
                "src/repro/sim/telemetry_use.py": _PUBLISHER,
                "src/repro/sim/metrics_use.py": _INSTRUMENTS,
            }
        )
    )
    written = update_registries(project)
    assert len(written) == 2

    events_path = tmp_path / "docs" / "registries" / "telemetry_events.json"
    events = json.loads(events_path.read_text())
    assert events["events"] == {"epoch": "TODO: describe"}
    families = json.loads(
        (tmp_path / "docs" / "registries" / "metric_families.json").read_text()
    )
    assert set(families["families"]) == {"pages_moved_total", "queue_depth"}

    # A maintainer fills in a description; regeneration keeps it.
    events["events"]["epoch"] = "per-epoch pipeline summary"
    events_path.write_text(json.dumps(events))
    update_registries(project)
    events = json.loads(events_path.read_text())
    assert events["events"]["epoch"] == "per-epoch pipeline summary"
