"""Bad/good fixture pairs for the CONC concurrency rule family."""

from tests.lintkit.conftest import messages, rule_ids

CONC = ["CONC001", "CONC002", "CONC003", "CONC004"]


# ----------------------------------------------------------------------
# CONC001 — lock discipline in lock-owning classes


def test_conc001_flags_unlocked_write_of_locked_attr(lint_tree):
    result = lint_tree({
        "src/repro/svc/box.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def locked_add(self, n):
                    with self._lock:
                        self.total += n

                def racy_add(self, n):
                    self.total += n
        """,
    }, rules=CONC)
    assert rule_ids(result) == ["CONC001"]
    (msg,) = messages(result)
    assert "racy_add" in msg and "_lock" in msg


def test_conc001_quiet_when_every_write_is_locked(lint_tree):
    result = lint_tree({
        "src/repro/svc/box.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total += n

                def reset(self, n):
                    with self._lock:
                        self.total = 0
        """,
    }, rules=CONC)
    assert result.findings == []


def test_conc001_init_writes_are_exempt(lint_tree):
    # Construction happens-before publication; __init__ writes are not
    # racy even when other methods write the same attr under the lock.
    result = lint_tree({
        "src/repro/svc/box.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total += n
        """,
    }, rules=CONC)
    assert result.findings == []


# ----------------------------------------------------------------------
# CONC001 — lock-free threaded classes need torn-safe annotations


def test_conc001_flags_unannotated_mutation_in_threaded_class(lint_tree):
    result = lint_tree({
        "src/repro/svc/server.py": """
            import threading

            class Server:
                def __init__(self):
                    self.hits = 0
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(
                        target=self._serve, daemon=True)
                    self._thread.start()

                def count(self):
                    self.hits += 1
        """,
    }, rules=CONC)
    assert rule_ids(result) == ["CONC001"]
    (msg,) = messages(result)
    assert "hits" in msg and "torn-safe" in msg


def test_conc001_torn_safe_annotation_exempts_and_is_consumed(lint_tree):
    result = lint_tree({
        "src/repro/svc/server.py": """
            import threading

            class Server:
                def __init__(self):
                    self.hits = 0
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(
                        target=self._serve, daemon=True)
                    self._thread.start()

                def count(self):
                    # lint: torn-safe -- monotone counter
                    self.hits += 1
        """,
    }, rules=CONC)
    # the annotation exempts the write AND is counted as used (no
    # CONC004 stale-annotation finding either)
    assert result.findings == []


def test_conc001_plain_rebinds_in_threaded_class_are_exempt(lint_tree):
    result = lint_tree({
        "src/repro/svc/server.py": """
            import threading

            class Server:
                def __init__(self):
                    self.started = False
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(
                        target=self._serve, daemon=True)
                    self._thread.start()
                    self.started = True
        """,
    }, rules=CONC)
    assert result.findings == []


# ----------------------------------------------------------------------
# CONC002 — blocking while holding a lock


def test_conc002_flags_direct_blocking_call_under_lock(lint_tree):
    result = lint_tree({
        "src/repro/svc/box.py": """
            import threading
            import time

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def slow(self):
                    with self._lock:
                        time.sleep(1.0)
                        self.total = 1

                def other(self):
                    with self._lock:
                        self.total = 2
        """,
    }, rules=["CONC002"])
    assert rule_ids(result) == ["CONC002"]
    (msg,) = messages(result)
    assert "time.sleep" in msg


def test_conc002_flags_transitively_blocking_callee_with_chain(lint_tree):
    result = lint_tree({
        "src/repro/svc/box.py": """
            import threading
            import time

            def drain():
                time.sleep(0.5)

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self):
                    with self._lock:
                        drain()
        """,
    }, rules=["CONC002"])
    assert rule_ids(result) == ["CONC002"]
    (msg,) = messages(result)
    assert "drain" in msg and "time.sleep" in msg


def test_conc002_quiet_when_blocking_is_outside_the_lock(lint_tree):
    result = lint_tree({
        "src/repro/svc/box.py": """
            import threading
            import time

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def flush(self):
                    with self._lock:
                        snapshot = self.total
                    time.sleep(0.5)
                    return snapshot
        """,
    }, rules=["CONC002"])
    assert result.findings == []


# ----------------------------------------------------------------------
# CONC003 — thread lifecycle


def test_conc003_flags_thread_without_daemon_or_join(lint_tree):
    result = lint_tree({
        "src/repro/svc/runner.py": """
            import threading

            def launch(fn):
                t = threading.Thread(target=fn)
                t.start()
        """,
    }, rules=["CONC003"])
    assert rule_ids(result) == ["CONC003"]
    (msg,) = messages(result)
    assert "`t`" in msg


def test_conc003_daemon_thread_is_fine(lint_tree):
    result = lint_tree({
        "src/repro/svc/runner.py": """
            import threading

            def launch(fn):
                t = threading.Thread(target=fn, daemon=True)
                t.start()
        """,
    }, rules=["CONC003"])
    assert result.findings == []


def test_conc003_join_in_another_method_satisfies_the_rule(lint_tree):
    result = lint_tree({
        "src/repro/svc/runner.py": """
            import threading

            class Runner:
                def start(self, fn):
                    self._worker_thread = threading.Thread(target=fn)
                    self._worker_thread.start()

                def close(self):
                    self._worker_thread.join(timeout=2.0)
        """,
    }, rules=["CONC003"])
    assert result.findings == []


# ----------------------------------------------------------------------
# CONC004 — stale torn-safe annotations


def test_conc004_flags_annotation_that_exempts_nothing(lint_tree):
    result = lint_tree({
        "src/repro/svc/plain.py": """
            class Plain:
                def bump(self):
                    # lint: torn-safe -- nothing racy here at all
                    self.n = 1
        """,
    }, rules=CONC)
    assert rule_ids(result) == ["CONC004"]
    (msg,) = messages(result)
    assert "exempts no" in msg
