"""Shared fixtures for the lintkit fixture suite.

Each test materializes a tiny fake project tree under ``tmp_path``
(file paths mimic ``src/repro/<layer>/...`` so layer-scoped rules see
the right layer) and lints it with an explicit rule selection, so
fixtures exercising one rule are not polluted by findings from
another.
"""

import json
import textwrap

import pytest

from repro.lintkit import lint_project, load_project


def build_project(tmp_path, files, registries=None):
    """Write ``files`` (rel path -> source) under ``tmp_path`` and load
    them as a lint :class:`~repro.lintkit.context.Project` rooted
    there."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    if registries:
        reg_dir = tmp_path / "docs" / "registries"
        reg_dir.mkdir(parents=True, exist_ok=True)
        for name, payload in registries.items():
            (reg_dir / name).write_text(json.dumps(payload, indent=2))
    return load_project([str(tmp_path)], root=str(tmp_path))


@pytest.fixture
def make_project(tmp_path):
    def make(files, registries=None):
        return build_project(tmp_path, files, registries)

    return make


@pytest.fixture
def lint_tree(make_project):
    """Build a project and lint it; ``rules`` selects the rules run."""

    def run(files, rules=None, registries=None):
        project = make_project(files, registries)
        return lint_project(project, only_rules=rules)

    return run


def rule_ids(result):
    """Sorted unique rule ids present in a result's findings."""
    return sorted({f.rule for f in result.findings})


def messages(result):
    return [f.message for f in result.findings]
