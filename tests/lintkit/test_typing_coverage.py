"""Local guard for the mypy strictness contract.

CI runs mypy with ``disallow_untyped_defs`` on ``repro.{core,cxl,sim,
migration,verify}`` (see ``[tool.mypy]`` in pyproject.toml), but mypy
is not installed in the hermetic test environment.  This test enforces
the same surface syntactically: every function in those packages must
annotate its return type and every parameter (``self``/``cls``
excluded), so an unannotated def fails locally before CI sees it.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"

TYPED_PACKAGES = ("core", "cxl", "sim", "migration", "verify")


def _unannotated(node):
    """Names of parameters missing annotations, plus the return slot."""
    problems = []
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            problems.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            problems.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        problems.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        problems.append("**" + args.kwarg.arg)
    if node.returns is None:
        problems.append("return")
    return problems


def test_typed_packages_have_fully_annotated_defs():
    missing = []
    for package in TYPED_PACKAGES:
        for path in sorted((SRC / "repro" / package).rglob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                problems = _unannotated(node)
                if problems:
                    rel = path.relative_to(SRC)
                    missing.append(
                        f"{rel}:{node.lineno} {node.name}({', '.join(problems)})"
                    )
    assert not missing, "unannotated defs in typed packages:\n" + "\n".join(
        missing
    )
