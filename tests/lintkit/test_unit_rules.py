"""Fixture tests for the unit-suffix rules UNIT001-UNIT003."""

from tests.lintkit.conftest import rule_ids


# ---------------------------------------------------------------------------
# UNIT001: mixed-unit arithmetic


def test_unit001_flags_adding_us_to_s(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/perf.py": """\
                def total(latency_us, wait_s):
                    return latency_us + wait_s
                """
        },
        rules=["UNIT001"],
    )
    assert rule_ids(result) == ["UNIT001"]
    msg = result.findings[0].message
    assert "us" in msg and "s" in msg


def test_unit001_flags_comparison_and_augassign(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/perf.py": """\
                def check(latency_ns, budget_us, delta_us):
                    acc_s = 0.0
                    acc_s += delta_us
                    return latency_ns > budget_us
                """
        },
        rules=["UNIT001"],
    )
    assert len(result.findings) == 2


def test_unit001_passes_same_unit_and_explicit_conversions(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/perf.py": """\
                def total(latency_us, extra_us, wait_s):
                    same = latency_us + extra_us
                    converted = latency_us * 1e-6 + wait_s
                    return same, converted
                """
        },
        rules=["UNIT001"],
    )
    assert result.ok


def test_unit001_passes_unit_preserving_calls(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/perf.py": """\
                def clamp(latency_us, floor_us):
                    return max(latency_us, floor_us) + floor_us
                """
        },
        rules=["UNIT001"],
    )
    assert result.ok


# ---------------------------------------------------------------------------
# UNIT002: assignments across units


def test_unit002_flags_assigning_us_to_s_name(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/perf.py": """\
                def convert(duration_us):
                    window_s = duration_us
                    return window_s
                """
        },
        rules=["UNIT002"],
    )
    assert rule_ids(result) == ["UNIT002"]


def test_unit002_passes_converted_assignment(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/perf.py": """\
                def convert(duration_us):
                    window_s = duration_us * 1e-6
                    window_us = duration_us
                    return window_s, window_us
                """
        },
        rules=["UNIT002"],
    )
    assert result.ok


# ---------------------------------------------------------------------------
# UNIT003: keyword arguments across units


def test_unit003_flags_mismatched_keyword(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/sched.py": """\
                def run(schedule, transfer_bytes):
                    schedule(timeout_s=transfer_bytes)
                """
        },
        rules=["UNIT003"],
    )
    assert rule_ids(result) == ["UNIT003"]


def test_unit003_passes_matching_keyword(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/sched.py": """\
                def run(schedule, delay_s):
                    schedule(timeout_s=delay_s)
                """
        },
        rules=["UNIT003"],
    )
    assert result.ok
