"""Bad/good fixture pairs for the PICKLE checkpoint-envelope rules."""

from tests.lintkit.conftest import messages, rule_ids

PICKLE = ["PICKLE001", "PICKLE002"]


# ----------------------------------------------------------------------
# PICKLE001 — OS resources inside the envelope


def test_pickle001_flags_open_handle_on_reachable_class(lint_tree):
    result = lint_tree({
        "src/repro/svc/sim.py": """
            import pickle

            class Sink:
                def __init__(self, path):
                    self._fh = open(path, "a")

            class Simulation:
                def __init__(self, path):
                    self.sink = Sink(path)

                def save_state(self, fh):
                    pickle.dump(self, fh)
        """,
    }, rules=PICKLE)
    assert rule_ids(result) == ["PICKLE001"]
    (msg,) = messages(result)
    # provenance names the path into the envelope
    assert "Sink._fh" in msg and "Simulation.sink" in msg


def test_pickle001_flags_thread_handle_with_subclass_closure(lint_tree):
    result = lint_tree({
        "src/repro/svc/sim.py": """
            import pickle
            import threading

            class Sink:
                pass

            class LiveSink(Sink):
                def start(self):
                    self._pump = threading.Thread(target=self.run)

            class Simulation:
                def __init__(self, sink: Sink):
                    self.sink = sink

                def save_state(self, fh):
                    pickle.dump(self, fh)
        """,
    }, rules=PICKLE)
    assert rule_ids(result) == ["PICKLE001"]
    (msg,) = messages(result)
    assert "LiveSink._pump" in msg and "thread handle" in msg


def test_pickle001_custom_getstate_exempts_the_class(lint_tree):
    result = lint_tree({
        "src/repro/svc/sim.py": """
            import pickle

            class Sink:
                def __init__(self, path):
                    self._fh = open(path, "a")

                def __getstate__(self):
                    state = dict(self.__dict__)
                    state["_fh"] = None
                    return state

            class Simulation:
                def __init__(self, path):
                    self.sink = Sink(path)

                def save_state(self, fh):
                    pickle.dump(self, fh)
        """,
    }, rules=PICKLE)
    assert result.findings == []


def test_pickle001_ignores_unreachable_classes(lint_tree):
    result = lint_tree({
        "src/repro/svc/sim.py": """
            import pickle

            class ScratchLog:
                def __init__(self, path):
                    self._fh = open(path, "a")

            class Simulation:
                def __init__(self):
                    self.n = 0

                def save_state(self, fh):
                    pickle.dump(self, fh)
        """,
    }, rules=PICKLE)
    assert result.findings == []


# ----------------------------------------------------------------------
# PICKLE002 — lambdas on checkpointed attributes


def test_pickle002_flags_lambda_assigned_from_outside_the_class(lint_tree):
    # The Tracer.sim_clock bug class: the lambda lands on the reachable
    # object from *another* module's function.
    result = lint_tree({
        "src/repro/svc/sim.py": """
            import pickle

            class Tracer:
                def __init__(self):
                    self.sim_clock = None

            class Simulation:
                def __init__(self):
                    self.tracer = Tracer()

                def save_state(self, fh):
                    pickle.dump(self, fh)

                def run(self, st):
                    self.tracer.sim_clock = lambda: st.now_s
        """,
    }, rules=PICKLE)
    assert rule_ids(result) == ["PICKLE002"]
    (msg,) = messages(result)
    assert "sim_clock" in msg and "Tracer" in msg


def test_pickle002_quiet_for_callable_class_instance(lint_tree):
    result = lint_tree({
        "src/repro/svc/sim.py": """
            import pickle

            class Clock:
                def __init__(self, st):
                    self._st = st

                def __call__(self):
                    return self._st.now_s

            class Tracer:
                def __init__(self):
                    self.sim_clock = None

            class Simulation:
                def __init__(self):
                    self.tracer = Tracer()

                def save_state(self, fh):
                    pickle.dump(self, fh)

                def run(self, st):
                    self.tracer.sim_clock = Clock(st)
        """,
    }, rules=PICKLE)
    assert result.findings == []


def test_pickle002_ignores_lambda_on_unreachable_attribute(lint_tree):
    result = lint_tree({
        "src/repro/svc/plot.py": """
            class Plotter:
                def __init__(self):
                    self.style_fn = None

            def style(plotter):
                plotter.style_fn = lambda ax: ax
        """,
    }, rules=PICKLE)
    assert result.findings == []
