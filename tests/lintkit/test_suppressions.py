"""Suppression mechanics: ``# lint: disable=RULE`` comments, span
expansion over multi-line statements, and SUP001 stale-suppression
findings."""

import textwrap

from repro.lintkit.suppressions import count_disable_comments
from tests.lintkit.conftest import rule_ids


def test_trailing_comment_suppresses_finding(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/x.py": """\
                import random

                x = random.random()  # lint: disable=DET001
                """
        },
        rules=["DET001"],
    )
    assert result.ok
    assert result.summary.suppressed == 1
    assert result.summary.by_rule["DET001"]["suppressed"] == 1


def test_standalone_comment_suppresses_line_below(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/x.py": """\
                import random

                # lint: disable=DET001 -- deliberate entropy for the demo
                x = random.random()
                """
        },
        rules=["DET001"],
    )
    assert result.ok
    assert result.summary.suppressed == 1


def test_suppression_covers_multiline_statement(lint_tree):
    # The finding lands on the random.random() line, two lines below
    # the comment; the statement-span expansion must still cover it.
    result = lint_tree(
        {
            "src/repro/sim/x.py": """\
                import random

                # lint: disable=DET001
                values = [
                    random.random()
                    for _ in range(3)
                ]
                """
        },
        rules=["DET001"],
    )
    assert result.ok
    assert result.summary.suppressed == 1


def test_unused_suppression_is_flagged_as_sup001(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/x.py": """\
                # lint: disable=DET001
                x = 1
                """
        }
    )
    assert rule_ids(result) == ["SUP001"]
    assert "never fired" in result.findings[0].message
    assert result.findings[0].severity.value == "warning"


def test_suppression_naming_unknown_rule_is_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/sim/x.py": """\
                x = 1  # lint: disable=NOPE001
                """
        }
    )
    assert rule_ids(result) == ["SUP001"]
    assert "unknown rule" in result.findings[0].message


def test_disable_text_inside_docstring_is_not_a_suppression(lint_tree):
    source = textwrap.dedent(
        '''\
        def f():
            """Suppress with `# lint: disable=DET001` above the line."""
            return 1
        '''
    )
    result = lint_tree({"src/repro/sim/x.py": source})
    assert result.ok
    assert count_disable_comments(source) == 0


def test_count_disable_comments_counts_real_comments():
    source = (
        "import random\n"
        "a = random.random()  # lint: disable=DET001\n"
        "# lint: disable=DET003\n"
        "b = list({1, 2})\n"
    )
    assert count_disable_comments(source) == 2
