"""Tests for the Page Access Counter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import PAGE_SIZE, AddressRegion
from repro.cxl.pac import PageAccessCounter

BASE = 0x1000_0000


def region(pages=64):
    return AddressRegion(BASE, pages * PAGE_SIZE)


def addresses_for(page_indices):
    """Byte addresses inside the region for relative page indices."""
    rel = np.asarray(page_indices, dtype=np.uint64)
    return np.uint64(BASE) + rel * np.uint64(PAGE_SIZE) + np.uint64(64)


class TestExactCounting:
    def test_counts_match_bincount(self):
        pac = PageAccessCounter(region())
        pages = np.array([0, 1, 1, 2, 2, 2])
        pac.observe(addresses_for(pages))
        assert list(pac.counts()[:4]) == [1, 2, 3, 0]

    def test_every_word_of_page_counts_to_same_page(self):
        pac = PageAccessCounter(region())
        pa = np.uint64(BASE) + np.arange(64, dtype=np.uint64) * np.uint64(64)
        pac.observe(pa)
        assert pac.counts()[0] == 64

    def test_out_of_region_ignored(self):
        pac = PageAccessCounter(region())
        pac.observe(np.array([0, BASE - 64], dtype=np.uint64))
        assert pac.total_accesses == 0

    def test_disabled_counts_nothing(self):
        pac = PageAccessCounter(region())
        pac.registers.write("enable", 0)
        pac.observe(addresses_for([0]))
        assert pac.total_accesses == 0

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=500))
    def test_exactness_property(self, pages):
        """PAC is exact: counts equal a reference histogram."""
        pac = PageAccessCounter(region())
        pac.observe(addresses_for(pages))
        expected = np.bincount(pages, minlength=64)
        assert np.array_equal(pac.counts(), expected)


class TestSaturationAndSpill:
    def test_small_counter_spills_to_table(self):
        pac = PageAccessCounter(region(), counter_bits=4)
        pages = np.zeros(100, dtype=np.int64)  # 100 > 15 saturation
        pac.observe(addresses_for(pages))
        assert pac.counts()[0] == 100
        assert pac.spills >= 1

    def test_incremental_observation_remains_exact(self):
        pac = PageAccessCounter(region(), counter_bits=3)
        for _ in range(50):
            pac.observe(addresses_for([5, 5, 5]))
        assert pac.counts()[5] == 150

    def test_flush_drains_sram(self):
        pac = PageAccessCounter(region())
        pac.observe(addresses_for([1]))
        pac.flush()
        assert pac.read_sram_via_mmio().sum() == 0
        assert pac.counts()[1] == 1

    def test_counter_bits_validated(self):
        with pytest.raises(ValueError):
            PageAccessCounter(region(), counter_bits=0)


class TestLookups:
    def test_count_of_page_absolute_pfn(self):
        pac = PageAccessCounter(region())
        pac.observe(addresses_for([3, 3]))
        pfn = (BASE // PAGE_SIZE) + 3
        assert pac.count_of_page(pfn) == 2

    def test_count_of_page_outside_region(self):
        pac = PageAccessCounter(region())
        assert pac.count_of_page(0) == 0

    def test_counts_of_pages_vectorised(self):
        pac = PageAccessCounter(region())
        pac.observe(addresses_for([0, 1, 1]))
        base_pfn = BASE // PAGE_SIZE
        out = pac.counts_of_pages([base_pfn, base_pfn + 1, 0])
        assert list(out) == [1, 2, 0]

    def test_top_k_ordering(self):
        pac = PageAccessCounter(region())
        pac.observe(addresses_for([2] * 5 + [7] * 3 + [1]))
        base_pfn = BASE // PAGE_SIZE
        assert list(pac.top_k(2)) == [base_pfn + 2, base_pfn + 7]

    def test_top_k_excludes_untouched(self):
        pac = PageAccessCounter(region())
        pac.observe(addresses_for([2]))
        assert len(pac.top_k(10)) == 1

    def test_top_k_access_count(self):
        pac = PageAccessCounter(region())
        pac.observe(addresses_for([2] * 5 + [7] * 3 + [1]))
        assert pac.top_k_access_count(2) == 8

    def test_reset(self):
        pac = PageAccessCounter(region())
        pac.observe(addresses_for([1]))
        pac.reset()
        assert pac.counts().sum() == 0
        assert pac.total_accesses == 0


class TestCounterCacheMode:
    """§3 Scalability: SRAM too small → counters behave as a cache."""

    def test_cache_mode_engaged(self):
        pac = PageAccessCounter(region(64), sram_counters=8)
        assert pac._cache_mode

    def test_cache_mode_remains_exact(self):
        pac = PageAccessCounter(region(64), sram_counters=8)
        rng = np.random.default_rng(0)
        pages = rng.integers(0, 64, 2000)
        pac.observe(addresses_for(pages))
        expected = np.bincount(pages, minlength=64)
        assert np.array_equal(pac.counts(), expected)

    def test_evictions_happen_on_conflicts(self):
        pac = PageAccessCounter(region(64), sram_counters=8)
        # Pages 0 and 8 conflict in a direct-mapped cache of 8 sets.
        pac.observe(addresses_for([0, 8, 0, 8]))
        assert pac.evictions >= 2
        assert pac.counts()[0] == 2
        assert pac.counts()[8] == 2

    def test_full_sram_when_counters_cover_region(self):
        pac = PageAccessCounter(region(64), sram_counters=64)
        assert not pac._cache_mode


class TestMmioInterface:
    def test_sram_readable_via_window(self):
        pac = PageAccessCounter(region())
        pac.observe(addresses_for([1, 1, 3]))
        sram = pac.read_sram_via_mmio()
        assert sram[1] == 2
        assert sram[3] == 1

    def test_registers_present(self):
        pac = PageAccessCounter(region())
        assert pac.registers.read("region_start") == BASE
        assert pac.registers.read("region_size") == 64 * PAGE_SIZE


def _reference_cached_observe(pac, rel_pages):
    """Per-access reference for the cached path: one install/hit/spill
    decision per access, in trace order."""
    period = pac._saturation + 1
    for pfn in rel_pages:
        set_idx = pfn % pac._num_sram
        tag = pac._tags[set_idx]
        if tag != pfn:
            if tag >= 0:
                pac._table[tag] += pac._sram[set_idx]
                pac.evictions += 1
            pac._tags[set_idx] = pfn
            pac._sram[set_idx] = 1
        else:
            pac._sram[set_idx] += 1
        if pac._sram[set_idx] > pac._saturation:
            pac._table[pfn] += period
            pac.spills += 1
            pac._sram[set_idx] = 0
    pac.total_accesses += len(rel_pages)


class TestCachedObserveEquivalence:
    """The run-length-compressed cached path must match per-access
    semantics: same counts, same eviction and spill totals."""

    def _trace(self, seed, n, pages):
        rng = np.random.default_rng(seed)
        # Mix runs (sequential re-touches) with conflict-heavy jumps.
        pieces = []
        while sum(p.size for p in pieces) < n:
            page = int(rng.integers(0, pages))
            run = int(rng.integers(1, 12))
            pieces.append(np.full(run, page, dtype=np.int64))
        return np.concatenate(pieces)[:n]

    @pytest.mark.parametrize("counter_bits", [2, 6])
    def test_matches_per_access_reference(self, counter_bits):
        trace = self._trace(11, 4000, 64)
        fast = PageAccessCounter(region(64), counter_bits=counter_bits,
                                 sram_counters=8)
        ref = PageAccessCounter(region(64), counter_bits=counter_bits,
                                sram_counters=8)
        fast.observe(addresses_for(trace))
        _reference_cached_observe(ref, trace.tolist())
        fast.flush()
        ref.flush()
        assert np.array_equal(fast.counts(), ref.counts())
        assert fast.evictions == ref.evictions
        assert fast.spills == ref.spills
        assert fast.total_accesses == ref.total_accesses

    def test_cached_vs_direct_flush_totals(self):
        """The differential oracle in miniature: cache mode loses no
        access relative to direct mode, per page."""
        trace = self._trace(13, 6000, 64)
        direct = PageAccessCounter(region(64), counter_bits=4)
        cached = PageAccessCounter(region(64), counter_bits=4,
                                   sram_counters=8)
        for start in range(0, trace.size, 512):
            chunk = addresses_for(trace[start:start + 512])
            direct.observe(chunk)
            cached.observe(chunk)
        direct.flush()
        cached.flush()
        assert np.array_equal(direct.counts(), cached.counts())
        assert direct.total_accesses == cached.total_accesses

    def test_run_compression_spills_within_one_chunk(self):
        """A long single-page run must spill exactly like sequential
        increments: total = n, spills = n // (sat+1)."""
        pac = PageAccessCounter(region(16), counter_bits=2,
                                sram_counters=4)  # saturates at 3
        pac.observe(addresses_for(np.full(10, 5)))
        pac.flush()
        assert pac.counts()[5] == 10
        assert pac.spills == 2  # 10 accesses = 2 full periods of 4 + 2
