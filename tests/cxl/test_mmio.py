"""Tests for the MMIO window and register-file models."""

import numpy as np
import pytest

from repro.cxl.mmio import (
    COUNTER_WINDOW_BYTES,
    CounterWindow,
    MmioError,
    RegisterFile,
)


class TestRegisterFile:
    def test_read_write(self):
        rf = RegisterFile(["a", "b"])
        rf.write("a", 42)
        assert rf.read("a") == 42
        assert rf.read("b") == 0

    def test_values_truncated_to_64bit(self):
        rf = RegisterFile(["a"])
        rf.write("a", 1 << 70)
        assert rf.read("a") == 0

    def test_offsets_are_distinct(self):
        rf = RegisterFile(["a", "b", "c"])
        offs = {rf.offset_of(n) for n in "abc"}
        assert len(offs) == 3

    def test_unknown_register_rejected(self):
        rf = RegisterFile(["a"])
        with pytest.raises(MmioError):
            rf.read("nope")
        with pytest.raises(MmioError):
            rf.write("nope", 1)

    def test_names(self):
        rf = RegisterFile(["x", "y"])
        assert rf.names() == ("x", "y")


class TestCounterWindow:
    def make(self, counters=1 << 20, dtype=np.uint32):
        sram = np.arange(counters, dtype=dtype)
        return sram, CounterWindow(sram)

    def test_read_within_window(self):
        sram, win = self.make()
        out = win.read_counters(0, 4)
        assert list(out) == [0, 1, 2, 3]

    def test_read_is_a_copy(self):
        sram, win = self.make()
        out = win.read_counters(0, 1)
        out[0] = 999
        assert sram[0] == 0

    def test_base_register_pages_through_sram(self):
        sram, win = self.make()
        win.set_base(COUNTER_WINDOW_BYTES)
        first_behind_window = COUNTER_WINDOW_BYTES // sram.itemsize
        out = win.read_counters(0, 1)
        assert out[0] == first_behind_window

    def test_base_must_be_aligned(self):
        _, win = self.make()
        with pytest.raises(MmioError):
            win.set_base(4096)

    def test_base_beyond_sram_rejected(self):
        _, win = self.make(counters=1024)
        with pytest.raises(MmioError):
            win.set_base(COUNTER_WINDOW_BYTES * 8)

    def test_read_beyond_window_rejected(self):
        _, win = self.make()
        with pytest.raises(MmioError):
            win.read_counters(COUNTER_WINDOW_BYTES - 4, 2)

    def test_read_beyond_sram_rejected(self):
        _, win = self.make(counters=8)
        with pytest.raises(MmioError):
            win.read_counters(0, 9)

    def test_read_all_sweeps_entire_sram(self):
        """The driver loop: sweep the 1MB window over a 4MB SRAM."""
        counters = (4 << 20) // 4  # 4MB of uint32
        sram = np.arange(counters, dtype=np.uint32)
        win = CounterWindow(sram)
        out = win.read_all()
        assert np.array_equal(out, sram)

    def test_read_all_restores_base(self):
        _, win = self.make()
        win.set_base(0)
        win.read_all()
        assert win.base == 0

    def test_rejects_multidimensional_sram(self):
        with pytest.raises(MmioError):
            CounterWindow(np.zeros((2, 2), dtype=np.uint32))
