"""Tests for the CXL controller request path."""

import numpy as np
import pytest

from repro.memory.address import PAGE_SIZE, AddressRegion
from repro.cxl.controller import CxlController
from repro.cxl.pac import PageAccessCounter


class RecordingSnoop:
    def __init__(self):
        self.batches = []

    def observe(self, addresses):
        self.batches.append(np.array(addresses, copy=True))


def make():
    region = AddressRegion(0x1000_0000, 16 * PAGE_SIZE)
    return region, CxlController(region)


class TestServe:
    def test_in_region_requests_served(self):
        region, ctrl = make()
        served = ctrl.serve(np.array([region.start, region.start + 64],
                                     dtype=np.uint64))
        assert served == 2
        assert ctrl.requests_served == 2

    def test_out_of_region_dropped(self):
        region, ctrl = make()
        served = ctrl.serve(np.array([0], dtype=np.uint64))
        assert served == 0

    def test_snoops_see_only_in_region_stream(self):
        region, ctrl = make()
        snoop = RecordingSnoop()
        ctrl.attach(snoop)
        ctrl.serve(np.array([0, region.start], dtype=np.uint64))
        assert len(snoop.batches) == 1
        assert list(snoop.batches[0]) == [region.start]

    def test_multiple_snoops_all_notified(self):
        region, ctrl = make()
        a, b = RecordingSnoop(), RecordingSnoop()
        ctrl.attach(a)
        ctrl.attach(b)
        ctrl.serve(np.array([region.start], dtype=np.uint64))
        assert len(a.batches) == len(b.batches) == 1

    def test_detach(self):
        region, ctrl = make()
        snoop = RecordingSnoop()
        ctrl.attach(snoop)
        ctrl.detach(snoop)
        ctrl.serve(np.array([region.start], dtype=np.uint64))
        assert not snoop.batches

    def test_attach_requires_observe(self):
        _, ctrl = make()
        with pytest.raises(TypeError):
            ctrl.attach(object())

    def test_pac_integration(self):
        region, ctrl = make()
        pac = PageAccessCounter(region)
        ctrl.attach(pac)
        ctrl.serve(np.array([region.start, region.start + PAGE_SIZE],
                            dtype=np.uint64))
        assert pac.counts()[0] == 1
        assert pac.counts()[1] == 1


class TestServiceTime:
    def test_latency_scaling(self):
        _, ctrl = make()
        assert ctrl.service_time_ns(10) == pytest.approx(2700.0)
        assert ctrl.service_time_ns(10, parallelism=4) == pytest.approx(675.0)

    def test_parallelism_validated(self):
        _, ctrl = make()
        with pytest.raises(ValueError):
            ctrl.service_time_ns(1, parallelism=0)
