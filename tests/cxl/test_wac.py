"""Tests for the Word Access Counter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import PAGE_SIZE, WORD_SIZE, AddressRegion
from repro.cxl.wac import WordAccessCounter

BASE = 0x2000_0000


def device(pages=64):
    return AddressRegion(BASE, pages * PAGE_SIZE)


def wac_for(pages=64, window_pages=None, counter_bits=4):
    window = (window_pages or pages) * PAGE_SIZE
    return WordAccessCounter(device(pages), window_bytes=window,
                             counter_bits=counter_bits)


def word_addresses(pairs):
    """Byte addresses for (page, word) pairs relative to BASE."""
    return np.array(
        [BASE + p * PAGE_SIZE + w * WORD_SIZE for p, w in pairs], dtype=np.uint64
    )


class TestExactCounting:
    def test_counts_per_word(self):
        wac = wac_for()
        wac.observe(word_addresses([(0, 0), (0, 0), (0, 5)]))
        counts = wac.counts()
        assert counts[0] == 2
        assert counts[5] == 1

    def test_distinct_words_of_same_page(self):
        wac = wac_for()
        wac.observe(word_addresses([(1, w) for w in range(10)]))
        assert wac.counts_by_page()[1].sum() == 10
        assert (wac.counts_by_page()[1] > 0).sum() == 10

    def test_saturation_spills(self):
        wac = wac_for(counter_bits=2)
        wac.observe(word_addresses([(0, 0)] * 40))
        assert wac.counts()[0] == 40
        assert wac.spills >= 1

    @settings(max_examples=20)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 63)),
                    min_size=1, max_size=300))
    def test_exactness_property(self, pairs):
        wac = wac_for(16)
        wac.observe(word_addresses(pairs))
        expected = np.zeros(16 * 64, dtype=np.int64)
        for p, w in pairs:
            expected[p * 64 + w] += 1
        assert np.array_equal(wac.counts(), expected)


class TestWindowing:
    def test_window_caps_at_device_size(self):
        wac = WordAccessCounter(device(4), window_bytes=1 << 30)
        assert wac.window_bytes == 4 * PAGE_SIZE

    def test_out_of_window_ignored(self):
        wac = wac_for(64, window_pages=2)
        wac.observe(word_addresses([(1, 0), (10, 0)]))
        assert wac.total_accesses == 1

    def test_move_window(self):
        wac = wac_for(64, window_pages=2)
        wac.set_monitor_window(BASE + 8 * PAGE_SIZE)
        wac.observe(word_addresses([(8, 3)]))
        assert wac.total_accesses == 1
        assert wac.counts()[3] == 1

    def test_move_window_clears_counters(self):
        wac = wac_for(64, window_pages=2)
        wac.observe(word_addresses([(0, 0)]))
        wac.set_monitor_window(BASE + 2 * PAGE_SIZE)
        assert wac.counts().sum() == 0

    def test_window_outside_device_rejected(self):
        wac = wac_for(4, window_pages=2)
        with pytest.raises(ValueError):
            wac.set_monitor_window(BASE + 3 * PAGE_SIZE)

    def test_sweeping_window_covers_device(self):
        """§3: monitor all regions over multiple intervals."""
        wac = wac_for(8, window_pages=2)
        touched = word_addresses([(p, 1) for p in range(8)])
        seen = 0
        for start_page in range(0, 8, 2):
            wac.set_monitor_window(BASE + start_page * PAGE_SIZE)
            wac.observe(touched)
            seen += int(wac.counts().sum())
        assert seen == 8


class TestSparsityStatistics:
    def test_unique_words_per_page(self):
        wac = wac_for()
        wac.observe(word_addresses([(0, 0), (0, 1), (0, 1), (2, 9)]))
        uniques = wac.unique_words_per_page()
        assert uniques[0] == 2
        assert uniques[1] == 0
        assert uniques[2] == 1

    def test_min_accesses_filter(self):
        wac = wac_for()
        wac.observe(word_addresses([(0, 0)] * 10 + [(1, 0)]))
        uniques = wac.unique_words_per_page(min_accesses=5)
        assert uniques[0] == 1
        assert uniques[1] == 0  # below the observability threshold

    def test_sparsity_profile_monotone(self):
        wac = wac_for()
        rng = np.random.default_rng(0)
        pairs = [(int(p), int(w)) for p, w in
                 zip(rng.integers(0, 64, 2000), rng.integers(0, 8, 2000))]
        wac.observe(word_addresses(pairs))
        prof = wac.sparsity_profile()
        values = [prof[n] for n in (4, 8, 16, 32, 48)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        assert prof[8] == 1.0  # words drawn only from [0, 8)

    def test_sparsity_profile_empty(self):
        wac = wac_for()
        prof = wac.sparsity_profile()
        assert all(v == 0.0 for v in prof.values())


class TestTopWords:
    def test_top_k_lines(self):
        wac = wac_for()
        wac.observe(word_addresses([(0, 3)] * 5 + [(1, 7)] * 2))
        lines = wac.top_k_lines(2)
        expected_first = (BASE // WORD_SIZE) + 3
        assert lines[0] == expected_first
        assert len(lines) == 2

    def test_counts_of_lines(self):
        wac = wac_for()
        wac.observe(word_addresses([(0, 3)] * 5))
        line = (BASE // WORD_SIZE) + 3
        assert list(wac.counts_of_lines([line, 0])) == [5, 0]

    def test_top_k_access_count(self):
        wac = wac_for()
        wac.observe(word_addresses([(0, 3)] * 5 + [(1, 7)] * 2 + [(2, 0)]))
        assert wac.top_k_access_count(2) == 7

    def test_reset(self):
        wac = wac_for()
        wac.observe(word_addresses([(0, 0)]))
        wac.reset()
        assert wac.counts().sum() == 0


class TestValidation:
    def test_bad_counter_bits(self):
        with pytest.raises(ValueError):
            WordAccessCounter(device(), counter_bits=0)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            WordAccessCounter(device(), window_bytes=0)
