"""Invariant-checker tests: clean runs pass, corruption is caught,
and checking never perturbs the simulation itself."""

import dataclasses

import pytest

from repro.migration.request import Direction, MigrationRequest
from repro.sim import SimConfig, Simulation
from repro.verify import InvariantChecker, InvariantViolation
from repro.workloads import registry


def small_config(**overrides):
    base = dict(
        total_accesses=90_000,
        chunk_size=15_000,
        checkpoints=1,
        check_invariants=True,
    )
    base.update(overrides)
    return SimConfig(**base)


def run_sim(policy="m5-hpt", bench="mcf", seed=0, **overrides):
    sim = Simulation(
        registry.build(bench, seed=seed), small_config(**overrides),
        policy=policy,
    )
    result = sim.run()
    return sim, result


class TestCleanRuns:
    """A healthy pipeline raises nothing and reports its check count."""

    def test_instant_run_is_clean(self):
        sim, result = run_sim()
        assert sim.checker is not None
        assert result.extra["invariant_violations"] == 0
        assert result.extra["invariant_checks"] > 0

    def test_async_run_is_clean(self):
        sim, result = run_sim(
            migration_mode="async",
            migration_inflight_budget=64,
            migration_queue_capacity=256,
        )
        assert result.extra["invariant_violations"] == 0
        # The queue-bounds checks only exist in async mode.
        assert result.extra["invariant_checks"] > 0

    @pytest.mark.parametrize("policy", ["anb", "damon", "m5-hpt+hwt"])
    def test_other_policies_are_clean(self, policy):
        _, result = run_sim(policy=policy, total_accesses=45_000)
        assert result.extra["invariant_violations"] == 0

    def test_checking_does_not_perturb_results(self):
        """check_invariants only *observes*: every result field must be
        bit-identical to an unchecked run of the same config."""
        _, checked = run_sim(check_invariants=True)
        _, plain = run_sim(check_invariants=False)
        for f in dataclasses.fields(plain):
            if f.name in ("extra", "timeline"):
                continue
            a = getattr(plain, f.name)
            b = getattr(checked, f.name)
            if isinstance(a, float):
                assert a == b, f"{f.name} drifted: {a} vs {b}"
            else:
                assert a == b, f"{f.name} drifted"


class TestCorruptionDetection:
    """Each tampering below simulates a tracker-state bug the checker
    exists to catch; record mode collects instead of raising."""

    def _recording_checker(self, sim):
        return InvariantChecker(sim, mode="record")

    def test_lost_access_is_caught(self):
        sim, _ = run_sim()
        checker = self._recording_checker(sim)
        checker.check_pac_conservation(epoch=99)
        assert not checker.violations  # sanity: clean before tampering
        sim.pac.total_accesses += 1  # one access the counters never saw
        checker.check_pac_conservation(epoch=99)
        assert len(checker.violations) == 1
        assert checker.violations[0].invariant == "pac_conservation"

    def test_oversize_cam_is_caught(self):
        sim, _ = run_sim()
        cam = sim._manager.hpt.cam
        checker = self._recording_checker(sim)
        checker.check_tracker_bounds(epoch=99)
        assert not checker.violations
        for extra in range(10_000_000, 10_000_000 + cam.k + 1):
            cam._entries[extra] = 1  # grow past K without bookkeeping
        checker.check_tracker_bounds(epoch=99)
        assert any(v.invariant == "tracker_bounds"
                   for v in checker.violations)

    def test_lost_page_is_caught(self):
        sim, _ = run_sim()
        checker = self._recording_checker(sim)
        checker.check_tier_conservation(epoch=99)
        assert not checker.violations
        sim.memory.node_map[0] = -1  # page 0 falls off both tiers
        checker.check_tier_conservation(epoch=99)
        assert any(v.invariant == "tier_conservation"
                   for v in checker.violations)

    def test_duplicate_queue_entry_is_caught(self):
        sim, _ = run_sim(
            migration_mode="async",
            migration_inflight_budget=64,
            migration_queue_capacity=256,
        )
        queue = sim.async_engine.queue
        checker = self._recording_checker(sim)
        checker.check_queue_bounds(epoch=99)
        assert not checker.violations
        # Two requests for one page, bypassing push()'s dedup.
        queue._queue.append(MigrationRequest(7, Direction.PROMOTE))
        queue._queue.append(MigrationRequest(7, Direction.PROMOTE))
        queue._queued_pages.add(7)
        checker.check_queue_bounds(epoch=99)
        assert any(v.invariant == "queue_bounds"
                   for v in checker.violations)

    def test_raise_mode_aborts(self):
        sim, _ = run_sim()
        checker = InvariantChecker(sim, mode="raise")
        sim.pac.total_accesses += 1
        with pytest.raises(InvariantViolation):
            checker.check_pac_conservation(epoch=99)

    def test_invalid_mode_rejected(self):
        sim, _ = run_sim()
        with pytest.raises(ValueError):
            InvariantChecker(sim, mode="warn")


class TestSummary:
    def test_summary_counts(self):
        sim, _ = run_sim()
        summary = sim.checker.summary()
        assert summary["violations"] == 0
        assert summary["checks_run"] == sim.checker.checks_run > 0
