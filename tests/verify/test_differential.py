"""Differential-oracle tests: the paired configurations agree, and the
pinned golden runs stay bit-identical."""

import json
import math
import pathlib

import pytest

from repro.sim import SimConfig, Simulation
from repro.verify import (
    DiffRow,
    MIGRATION_TOLERANCES,
    OracleReport,
    diff_run_results,
    migration_oracle,
    pac_oracle,
    run_all,
    sketch_oracle,
)
from repro.verify.differential import _unlimited_async
from repro.workloads import registry

GOLDENS = pathlib.Path(__file__).parent / "data" / "differential_goldens.json"


class TestDiffRow:
    def test_equal_values_zero_drift(self):
        row = DiffRow("x", 5.0, 5.0)
        assert row.drift == 0.0 and row.ok

    def test_drift_is_relative_to_larger_magnitude(self):
        row = DiffRow("x", 100.0, 90.0, tolerance=0.05)
        assert row.drift == pytest.approx(0.10)
        assert not row.ok

    def test_zero_baseline_compares_absolutely(self):
        assert not DiffRow("x", 0.0, 3.0).ok
        assert DiffRow("x", 0.0, 0.0).ok


class TestOracleReport:
    def test_failures_and_format(self):
        report = OracleReport("demo", "test pair")
        report.add("good", 1, 1)
        report.add("bad", 10, 20, tolerance=0.1)
        assert not report.ok
        assert [row.field for row in report.failures()] == ["bad"]
        text = report.format()
        assert "FAIL bad" in text and "ok   good" in text


class TestOraclePairs:
    def test_sketch_oracle_agrees(self):
        report = sketch_oracle()
        assert report.ok, report.format()

    def test_pac_oracle_agrees(self):
        report = pac_oracle()
        assert report.ok, report.format()

    def test_migration_oracle_agrees(self):
        report = migration_oracle()
        assert report.ok, report.format()

    def test_engine_oracle_agrees(self):
        from repro.verify import engine_oracle

        report = engine_oracle(accesses=45_000, chunk=15_000)
        assert report.ok, report.format()
        # The bit-exact contract means zero tolerance on every row.
        assert all(row.tolerance == 0.0 for row in report.rows)

    def test_kernels_oracle_agrees(self):
        from repro.verify import kernels_oracle

        report = kernels_oracle(accesses=30_000)
        assert report.ok, report.format()

    def test_run_all_rejects_unknown(self):
        with pytest.raises(ValueError):
            run_all(["sketch", "nope"])

    def test_run_all_order(self):
        reports = run_all(["pac", "sketch"])
        assert [r.name for r in reports] == ["pac", "sketch"]


class TestGoldenRuns:
    """Two benchmarks x {instant, async-unlimited}, pinned.

    Regenerate with the snippet in ``docs/verification.md`` only when
    an intentional model change shifts the pipeline's outputs.
    """

    @pytest.fixture(scope="class")
    def goldens(self):
        with open(GOLDENS) as fh:
            return json.load(fh)

    def _fields(self, result):
        return {
            "promoted": result.promoted,
            "demoted": result.demoted,
            "nr_pages_ddr": result.nr_pages_ddr,
            "nr_pages_cxl": result.nr_pages_cxl,
            "n_hot": len(result.hot_pfns),
            "execution_time_s": result.execution_time_s,
            "app_time_s": result.app_time_s,
        }

    def _assert_matches(self, got, want):
        for field, expected in want.items():
            actual = got[field]
            if isinstance(expected, float):
                assert math.isclose(actual, expected, rel_tol=1e-12), \
                    f"{field}: {actual} != {expected}"
            else:
                assert actual == expected, f"{field}: {actual} != {expected}"

    @pytest.mark.parametrize("bench", ["mcf", "roms"])
    def test_instant_golden(self, goldens, bench):
        base = SimConfig(total_accesses=200_000, chunk_size=16_384,
                         checkpoints=1)
        result = Simulation(registry.build(bench, seed=1), base,
                            policy="m5-hpt").run()
        self._assert_matches(self._fields(result), goldens[bench]["instant"])

    @pytest.mark.parametrize("bench", ["mcf", "roms"])
    def test_async_unlimited_golden(self, goldens, bench):
        base = SimConfig(total_accesses=200_000, chunk_size=16_384,
                         checkpoints=1)
        result = Simulation(
            registry.build(bench, seed=1), _unlimited_async(base),
            policy="m5-hpt",
        ).run()
        self._assert_matches(self._fields(result),
                             goldens[bench]["async_unlimited"])

    @pytest.mark.parametrize("bench", ["mcf", "roms"])
    def test_golden_pair_within_tolerances(self, goldens, bench):
        """The pinned pairs themselves respect the oracle tolerances —
        a tolerance tightened below reality fails here, not in CI."""
        instant = goldens[bench]["instant"]
        async_r = goldens[bench]["async_unlimited"]
        for field, tol in MIGRATION_TOLERANCES.items():
            row = DiffRow(field, instant[field], async_r[field], tol)
            assert row.ok, (f"{bench}.{field}: {row.a} vs {row.b} "
                            f"drift {row.drift:.2%} > tol {tol:.2%}")


class TestDiffRunResults:
    def test_identical_runs_have_zero_drift(self):
        base = SimConfig(total_accesses=60_000, chunk_size=15_000,
                         checkpoints=1)
        a = Simulation(registry.build("mcf", seed=1), base,
                       policy="m5-hpt").run()
        b = Simulation(registry.build("mcf", seed=1), base,
                       policy="m5-hpt").run()
        rows = diff_run_results(a, b)
        assert all(row.drift == 0.0 for row in rows)
