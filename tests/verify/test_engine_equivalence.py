"""Hypothesis equivalence suites: batched kernels ≡ reference loops.

Every vectorized kernel of the epoch hot path keeps a per-access
reference implementation (the ``engine="reference"`` path).  The
batched twin promises *identical* end state — not statistically
similar, identical — and these properties check that promise on
randomly generated streams, including the shapes most likely to break
a vectorization: empty chunks, all-duplicate chunks, streams that
saturate hardware counters, and estimate ties that stress eviction
order.

``derandomize=True`` keeps CI deterministic: examples are derived
from the property itself, not a random seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spacesaving import MisraGries, SpaceSaving
from repro.core.stickysampling import StickySampling
from repro.core.topk import SortedCam
from repro.core.trackers import make_hpt
from repro.cxl.batch import AccessBatch
from repro.cxl.pac import PageAccessCounter
from repro.cxl.wac import WordAccessCounter
from repro.memory.address import PAGE_SHIFT, PAGE_SIZE, AddressRegion
from repro.memory.mglru import MultiGenLru
from repro.memory.migration import MigrationEngine
from repro.memory.tiers import NodeKind, TieredMemory

SETTINGS = settings(max_examples=60, derandomize=True, deadline=None)

# Narrow key spaces force duplicates and counter saturation; min_size=0
# includes the empty chunk.
streams = st.lists(st.integers(0, 40), min_size=0, max_size=300)
chunked_streams = st.lists(streams, min_size=1, max_size=4)

NUM_PAGES = 64
REGION = AddressRegion(0x1000_0000, NUM_PAGES * PAGE_SIZE)


def _addresses(keys):
    pages = np.asarray(keys, dtype=np.uint64) % np.uint64(NUM_PAGES)
    return np.uint64(REGION.start) + (pages << np.uint64(PAGE_SHIFT))


class TestSortedCamOfferBatch:
    """offer_batch ≡ a loop of offer() calls, including eviction ties."""

    # Estimates drawn from a tiny range so ties (the argmin/eviction
    # tie-break paths) occur constantly.
    offers = st.lists(
        st.tuples(st.integers(0, 60), st.integers(1, 5)),
        min_size=0,
        max_size=120,
    )

    @SETTINGS
    @given(offers)
    def test_matches_sequential(self, pairs):
        # offer_batch's contract: unique keys, non-increasing estimates
        # (what a tracker's sorted unique ingest produces).
        best = {}
        for key, est in pairs:
            best[key] = max(est, best.get(key, 0))
        items = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        seq, batch = SortedCam(8), SortedCam(8)
        for key, est in items:
            seq.offer(key, est)
        if items:
            keys = np.array([k for k, _ in items], dtype=np.int64)
            ests = np.array([e for _, e in items], dtype=np.int64)
        else:
            keys = ests = np.empty(0, dtype=np.int64)
        batch.offer_batch(keys, ests)
        assert list(seq.entries()) == list(batch.entries())
        assert (seq.offers, seq.hits, seq.insertions, seq.replacements,
                seq.rejections) == (batch.offers, batch.hits,
                                    batch.insertions, batch.replacements,
                                    batch.rejections)


class TestCountStructureBatches:
    """update_batch ≡ update_batch_reference for the count summaries.

    Dict *order* is asserted too — downstream tie-breaks (CAM argmin,
    StickySampling's RNG-in-dict-order diminish) depend on it.
    """

    @SETTINGS
    @given(chunked_streams)
    def test_spacesaving(self, chunks):
        ref, fast = SpaceSaving(8), SpaceSaving(8)
        for chunk in chunks:
            keys = np.asarray(chunk, dtype=np.uint64)
            ref.update_batch_reference(keys)
            fast.update_batch(keys)
        assert list(ref._counts.items()) == list(fast._counts.items())
        assert ref.items_seen == fast.items_seen
        assert sorted(ref.top_k(8)) == sorted(fast.top_k(8))

    @SETTINGS
    @given(chunked_streams)
    def test_misra_gries(self, chunks):
        ref, fast = MisraGries(8), MisraGries(8)
        for chunk in chunks:
            keys = np.asarray(chunk, dtype=np.uint64)
            ref.update_batch_reference(keys)
            fast.update_batch(keys)
        assert list(ref._counts.items()) == list(fast._counts.items())
        assert ref.items_seen == fast.items_seen

    @SETTINGS
    @given(chunked_streams)
    def test_sticky_sampling(self, chunks):
        ref = StickySampling(support=0.1, error=0.05, failure_prob=0.1,
                             seed=5)
        fast = StickySampling(support=0.1, error=0.05, failure_prob=0.1,
                              seed=5)
        for chunk in chunks:
            keys = np.asarray(chunk, dtype=np.uint64)
            ref.update_batch_reference(keys)
            fast.update_batch(keys)
        assert list(ref._counts.items()) == list(fast._counts.items())
        assert ref.items_seen == fast.items_seen
        # The batched path must consume the sampling RNG at exactly the
        # reference positions, or future admissions diverge.
        assert (ref._rng.bit_generator.state
                == fast._rng.bit_generator.state)


class TestTrackerBatches:
    """Full trackers: observe_batch on batched vs reference instances."""

    @SETTINGS
    @given(chunked_streams)
    def test_all_algorithms(self, chunks):
        for algorithm in ("cm-sketch", "space-saving", "misra-gries",
                          "sticky-sampling", "exact"):
            ref = make_hpt(k=6, algorithm=algorithm, num_counters=256,
                           batched=False)
            fast = make_hpt(k=6, algorithm=algorithm, num_counters=256,
                            batched=True)
            for chunk in chunks:
                batch = AccessBatch(_addresses(chunk), region=REGION)
                ref.observe_batch(batch)
                fast.observe_batch(batch)
            assert sorted(ref.peek()) == sorted(fast.peek())
            assert ref.accesses_observed == fast.accesses_observed


class TestSnoopCounterBatches:
    """PAC/WAC chunked counter updates conserve per-line counts across
    saturation (2-bit counters spill after 3 accesses)."""

    @SETTINGS
    @given(chunked_streams)
    def test_pac_counts(self, chunks):
        ref = PageAccessCounter(REGION, counter_bits=2, batched=False)
        fast = PageAccessCounter(REGION, counter_bits=2, batched=True)
        for chunk in chunks:
            addresses = _addresses(chunk)
            ref.observe(addresses)
            fast.observe_batch(AccessBatch(addresses, region=REGION))
        assert np.array_equal(ref.counts(), fast.counts())
        assert ref.total_accesses == fast.total_accesses

    @SETTINGS
    @given(chunked_streams)
    def test_wac_counts(self, chunks):
        ref = WordAccessCounter(REGION, window_bytes=REGION.size // 2,
                                counter_bits=2, batched=False)
        fast = WordAccessCounter(REGION, window_bytes=REGION.size // 2,
                                 counter_bits=2, batched=True)
        for chunk in chunks:
            addresses = _addresses(chunk)
            ref.observe(addresses)
            fast.observe_batch(AccessBatch(addresses, region=REGION))
        assert np.array_equal(ref.counts(), fast.counts())
        assert ref.total_accesses == fast.total_accesses


def _tiered(batched):
    memory = TieredMemory(ddr_pages=8, cxl_pages=NUM_PAGES + 4,
                          num_logical_pages=NUM_PAGES, batched=batched)
    memory.allocate_all(NodeKind.CXL)
    return memory


class TestMemoryBatches:
    """Tiers, MGLRU, and bulk migration frame placement."""

    @SETTINGS
    @given(streams)
    def test_mglru_record_accesses(self, keys):
        pages = np.asarray(keys, dtype=np.int64) % NUM_PAGES
        ref, fast = MultiGenLru(NUM_PAGES, batched=False), MultiGenLru(
            NUM_PAGES, batched=True)
        for lru in (ref, fast):
            lru.track(np.arange(0, NUM_PAGES, 2))
            lru.age()
        ref.record_accesses(pages)
        fast.record_accesses(pages)
        assert np.array_equal(ref._gen, fast._gen)
        assert np.array_equal(ref._heat, fast._heat)

    @SETTINGS
    @given(chunked_streams)
    def test_promote_demote_state(self, chunks):
        states = []
        for batched in (False, True):
            memory = _tiered(batched)
            mglru = MultiGenLru(NUM_PAGES, batched=batched)
            engine = MigrationEngine(memory, mglru=mglru, batched=batched)
            for i, chunk in enumerate(chunks):
                pages = np.asarray(chunk, dtype=np.int64) % NUM_PAGES
                mglru.record_accesses(pages[memory.node_map[pages] == 0])
                engine.promote(pages)
                if i % 2:
                    engine.demote(pages[: len(pages) // 2])
                    mglru.age()
            states.append((
                memory.frame_map.tolist(), memory.node_map.tolist(),
                list(memory.ddr._free), list(memory.cxl._free),
                mglru._gen.tolist(), mglru._heat.tolist(),
                engine.stats.promoted, engine.stats.demoted,
            ))
        assert states[0] == states[1]

    @SETTINGS
    @given(streams)
    def test_translate_and_epoch_accounting(self, keys):
        pages = np.asarray(keys, dtype=np.int64) % NUM_PAGES
        addresses = (pages.astype(np.uint64) << np.uint64(PAGE_SHIFT)) | (
            np.arange(pages.size, dtype=np.uint64) % np.uint64(PAGE_SIZE)
        )
        ref, fast = _tiered(False), _tiered(True)
        assert np.array_equal(ref.translate(addresses),
                              fast.translate(addresses))
        ref.record_epoch_accesses(pages)
        fast.record_epoch_accesses(pages)
        assert (ref.ddr.accesses_total, ref.cxl.accesses_total) == (
            fast.ddr.accesses_total, fast.cxl.accesses_total)
