"""Hypothesis property suites for the paper's analytical guarantees.

Each class encodes a bound the paper (or the underlying streaming
literature) proves, checked against randomly generated streams:
CM-Sketch never underestimates, Space-Saving overestimates by at most
N/K, the sorted CAM fed exact counts reproduces the exact top-K, and
MGLRU victim selection stays within its candidate set.

``derandomize=True`` keeps CI deterministic: examples are derived from
the property itself, not a random seed.
"""

import collections

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketch import CountMinSketch
from repro.core.spacesaving import SpaceSaving
from repro.core.topk import SortedCam
from repro.core.trackers import ExactTopK
from repro.memory.mglru import MultiGenLru

SETTINGS = settings(max_examples=60, derandomize=True, deadline=None)

streams = st.lists(st.integers(0, 200), min_size=1, max_size=400)


class TestCmSketchNeverUnderestimates:
    @SETTINGS
    @given(streams)
    def test_sequential_update(self, keys):
        sketch = CountMinSketch(64, depth=2)
        for key in keys:
            sketch.update_one(key)
        true = collections.Counter(keys)
        for key, count in true.items():
            assert sketch.estimate_one(key) >= count

    @SETTINGS
    @given(streams)
    def test_batched_update(self, keys):
        sketch = CountMinSketch(64, depth=2)
        sketch.update_batch(np.asarray(keys, dtype=np.uint64))
        true = collections.Counter(keys)
        for key, count in true.items():
            assert sketch.estimate_one(key) >= count

    @SETTINGS
    @given(streams)
    def test_conservative_update(self, keys):
        sketch = CountMinSketch(64, depth=2, conservative=True)
        for key in keys:
            sketch.update_one(key)
        true = collections.Counter(keys)
        for key, count in true.items():
            assert sketch.estimate_one(key) >= count

    @SETTINGS
    @given(streams)
    def test_conservative_never_above_plain(self, keys):
        plain = CountMinSketch(16, depth=2)
        conservative = CountMinSketch(16, depth=2, conservative=True)
        for key in keys:
            plain.update_one(key)
            conservative.update_one(key)
        for key in set(keys):
            assert conservative.estimate_one(key) <= plain.estimate_one(key)


class TestSpaceSavingBounds:
    @SETTINGS
    @given(streams, st.integers(2, 16))
    def test_overestimate_within_n_over_k(self, keys, capacity):
        ss = SpaceSaving(capacity)
        for key in keys:
            ss.update_one(key)
        true = collections.Counter(keys)
        error_bound = len(keys) / capacity  # classic N/K guarantee
        for addr, est in ss.top_k(capacity):
            assert est >= true[addr]
            assert est - true[addr] <= error_bound

    @SETTINGS
    @given(streams, st.integers(1, 8))
    def test_size_and_heap_bounded(self, keys, capacity):
        ss = SpaceSaving(capacity)
        for key in keys:
            ss.update_one(key)
        assert len(ss) <= capacity
        assert len(ss._heap) <= ss._heap_bound

    @SETTINGS
    @given(st.integers(2, 10))
    def test_majority_item_retained(self, capacity):
        ss = SpaceSaving(capacity)
        stream = [999] * 100 + list(range(50))
        for key in stream:
            ss.update_one(key)
        # An item with count > N/K cannot be fully displaced.
        assert 999 in ss


class TestSortedCamMatchesExactOracle:
    @SETTINGS
    @given(streams, st.integers(1, 8))
    def test_single_offer_per_key_selects_exact_topk(self, keys, k):
        """Offered each key's exact count once, in one pass sorted
        hottest-first, the CAM must hold exactly the exact top-K set
        (modulo count ties at the boundary)."""
        true = collections.Counter(keys)
        cam = SortedCam(k)
        ranked = sorted(true.items(), key=lambda kv: (-kv[1], kv[0]))
        for addr, count in ranked:
            cam.offer(addr, count)
        kept = {addr: count for addr, count in cam.entries()}
        assert len(kept) == min(k, len(true))
        if len(true) > k:
            boundary = ranked[k - 1][1]
            for addr, count in kept.items():
                assert count >= boundary
                assert true[addr] == count

    @SETTINGS
    @given(streams, st.integers(1, 8))
    def test_exact_tracker_matches_counter(self, keys, k):
        tracker = ExactTopK(k, granularity="word")
        # Keys are 64B-word indices; feed them as aligned addresses.
        tracker.observe(np.asarray(keys, dtype=np.uint64) << np.uint64(6))
        true = collections.Counter(keys)
        expected = sorted(true.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        assert tracker.peek() == expected


class TestMglruVictims:
    @SETTINGS
    @given(
        st.lists(st.integers(0, 63), min_size=1, max_size=40, unique=True),
        st.lists(st.integers(0, 63), min_size=1, max_size=40, unique=True),
        st.integers(0, 20),
    )
    def test_coldest_within_candidates(self, tracked, among, n):
        lru = MultiGenLru(64)
        lru.track(np.asarray(tracked))
        victims = lru.coldest(n, among=np.asarray(among))
        assert victims.size <= n
        assert victims.size == np.unique(victims).size
        allowed = set(tracked) & set(among)
        assert set(victims.tolist()) <= allowed
        # coldest() must exhaust the candidate pool before going short.
        assert victims.size == min(n, len(allowed))

    @SETTINGS
    @given(st.lists(st.integers(0, 31), min_size=2, max_size=20, unique=True))
    def test_older_generation_evicted_first(self, pages):
        lru = MultiGenLru(32)
        old, young = pages[: len(pages) // 2], pages[len(pages) // 2:]
        lru.track(np.asarray(old))
        lru.age()
        lru.track(np.asarray(young))
        victims = lru.coldest(len(old))
        assert set(victims.tolist()) == set(old)
