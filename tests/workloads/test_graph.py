"""Tests for the graph substrate and GAP generators."""

import numpy as np
import pytest

from repro.workloads.base import WorkloadSpec
from repro.workloads.graph import (
    EDGES_PER_PAGE,
    VERTICES_PER_PAGE,
    GraphLayout,
    make_gap_workload,
    preferential_attachment,
    uniform_random_graph,
)


class TestCsrGraph:
    def test_degrees_sum_to_edges(self):
        g = preferential_attachment(500, m=4, seed=0)
        assert g.degrees().sum() == g.num_edges

    def test_neighbors_slice(self):
        g = preferential_attachment(100, m=3, seed=1)
        v = 50
        nbrs = g.neighbors(v)
        assert len(nbrs) == g.degrees()[v]

    def test_undirected_symmetry(self):
        g = preferential_attachment(200, m=3, seed=2)
        # Every edge appears in both directions.
        fwd = set()
        for v in range(g.num_nodes):
            for u in g.neighbors(v).tolist():
                fwd.add((v, u))
        assert all((u, v) in fwd for (v, u) in fwd)


class TestPreferentialAttachment:
    def test_heavy_tailed_degrees(self):
        g = preferential_attachment(3000, m=4, seed=3)
        deg = g.degrees()
        assert deg.max() > 10 * np.median(deg)

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            preferential_attachment(4, m=4)

    def test_uniform_graph_flat_degrees(self):
        g = uniform_random_graph(3000, avg_degree=16, seed=4)
        deg = g.degrees()
        assert deg.max() < 5 * np.median(deg)


class TestGraphLayout:
    def make(self):
        g = preferential_attachment(VERTICES_PER_PAGE * 20, m=4, seed=0)
        pages = 20 + (-(-g.num_edges // EDGES_PER_PAGE)) + 10
        return g, GraphLayout(g, pages)

    def test_page_budget_checked(self):
        g = preferential_attachment(VERTICES_PER_PAGE * 20, m=8, seed=0)
        with pytest.raises(ValueError):
            GraphLayout(g, 2)

    def test_vertex_page_heat_tracks_degrees(self):
        g, layout = self.make()
        heat = layout.vertex_page_heat()
        assert heat.sum() == pytest.approx(g.degrees().sum())

    def test_popularity_normalised_and_positive(self):
        _, layout = self.make()
        pop = layout.popularity(seed=1)
        assert pop.sum() == pytest.approx(1.0)
        assert (pop > 0).all()  # padding pages get a floor

    def test_vertex_weight_split(self):
        _, layout = self.make()
        heavy_v = layout.popularity(vertex_weight=0.9, seed=0)
        light_v = layout.popularity(vertex_weight=0.1, seed=0)
        assert not np.allclose(heavy_v, light_v)


class TestGapWorkloads:
    def spec(self, pages=3000):
        return WorkloadSpec(name="gap", footprint_pages=pages)

    @pytest.mark.parametrize("kernel", ["bc", "bfs", "cc", "pr", "sssp", "tc"])
    def test_all_kernels_generate(self, kernel):
        wl = make_gap_workload(kernel, self.spec(), seed=0)
        pa = wl.trace(10_000)
        assert pa.size == 10_000
        assert int(pa.max() >> np.uint64(12)) < 3000

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            make_gap_workload("dfs", self.spec())

    def test_pr_skewed_by_hubs(self):
        wl = make_gap_workload("pr", self.spec(), seed=0)
        pages = wl.trace(200_000) >> np.uint64(12)
        counts = np.bincount(pages.astype(np.int64), minlength=3000)
        touched = counts[counts > 0]
        assert touched.max() > 10 * np.median(touched)

    def test_bfs_working_set_shifts(self):
        wl = make_gap_workload("bfs", self.spec(), seed=0)

        def hottest(pa, k=200):
            counts = np.bincount((pa >> np.uint64(12)).astype(np.int64),
                                 minlength=3000)
            return set(np.argsort(-counts)[:k].tolist())

        early = hottest(wl.trace(30_000))
        for _ in range(4):  # advance well past one phase
            wl.chunk(30_000)
        late = hottest(wl.chunk(30_000))
        jaccard = len(early & late) / len(early | late)
        assert jaccard < 0.6  # the hot window moved
