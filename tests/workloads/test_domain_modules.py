"""Module-specific tests for the domain workload generators."""

import numpy as np
import pytest

from repro.workloads.base import WorkloadSpec
from repro.workloads.kvstore import KV_DENSITY, KV_PAGE_SKEW, make_kv_workload
from repro.workloads.ml import MODEL_FRACTION, make_liblinear_workload
from repro.workloads.spec_cpu import ROMS_TIERS, SPEC_DENSITY, make_spec_workload
from repro.workloads.zipf import with_cold_tail, zipf_popularity


def spec(pages=4096, name="t"):
    return WorkloadSpec(name=name, footprint_pages=pages)


class TestKvStore:
    def test_all_stores_covered(self):
        assert set(KV_DENSITY) == {"redis", "memcached", "cachelib"}
        assert set(KV_PAGE_SKEW) == set(KV_DENSITY)

    def test_density_dicts_are_valid_cdfs(self):
        for store, cdf in KV_DENSITY.items():
            values = [cdf[n] for n in (4, 8, 16, 32, 48)]
            assert all(0 <= v <= 1 for v in values), store
            assert values == sorted(values), store

    def test_redis_sparser_than_cachelib(self):
        assert KV_DENSITY["redis"][16] > KV_DENSITY["cachelib"][16]

    def test_unknown_store_rejected(self):
        with pytest.raises(ValueError):
            make_kv_workload("rocksdb", spec())

    def test_word_skew_applied(self):
        wl = make_kv_workload("redis", spec())
        assert wl.params.word_skew > 0


class TestSpecCpu:
    def test_name_normalisation(self):
        """Both 'mcf' and 'mcf_r' resolve."""
        a = make_spec_workload("mcf", spec(), seed=0)
        b = make_spec_workload("mcf_r", spec(), seed=0)
        assert np.array_equal(a.trace(1000), b.trace(1000))

    def test_all_four_benchmarks(self):
        assert set(SPEC_DENSITY) == {"mcf", "cactubssn", "fotonik3d", "roms"}

    def test_roms_tiers_fraction_sums_to_one(self):
        assert sum(f for f, _ in ROMS_TIERS) == pytest.approx(1.0)

    def test_roms_tier_ordering(self):
        heats = [h for _, h in ROMS_TIERS]
        assert heats == sorted(heats, reverse=True)

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            make_spec_workload("gcc", spec())


class TestLiblinear:
    def test_model_pages_dominate_heat(self):
        wl = make_liblinear_workload(spec(4096), seed=0)
        pop = np.sort(wl.params.popularity)[::-1]
        model_pages = max(1, int(4096 * MODEL_FRACTION))
        # The hottest model_pages pages carry a large share of mass.
        assert pop[:model_pages].sum() > 0.5

    def test_rotating_phase(self):
        from repro.workloads.phases import RotatingWorkingSet

        wl = make_liblinear_workload(spec(), seed=0)
        assert isinstance(wl._phase, RotatingWorkingSet)


class TestColdTail:
    def test_mass_moves_to_active_set(self):
        pop = zipf_popularity(1000, 0.0)
        cooled = with_cold_tail(pop, active_fraction=0.3, seed=0)
        active_mass = np.sort(cooled)[::-1][:300].sum()
        assert active_mass > 0.98

    def test_full_active_is_identity(self):
        pop = zipf_popularity(100, 1.0)
        same = with_cold_tail(pop, active_fraction=1.0)
        assert np.allclose(same, pop)

    def test_validation(self):
        pop = zipf_popularity(10, 1.0)
        with pytest.raises(ValueError):
            with_cold_tail(pop, active_fraction=0.0)
        with pytest.raises(ValueError):
            with_cold_tail(pop, active_fraction=0.5, cold_heat=0.0)

    def test_cools_least_popular_first(self):
        pop = zipf_popularity(100, 1.0)  # rank-ordered descending
        cooled = with_cold_tail(pop, active_fraction=0.5, seed=1)
        # The top half keeps its relative mass ordering.
        assert (cooled[:50] > cooled[50:].max()).all()
