"""Tests for the temporal phase models."""

import numpy as np
import pytest

from repro.workloads.phases import RotatingWorkingSet, Stationary, SweepMix
from repro.workloads.zipf import uniform_popularity, zipf_popularity


class TestStationary:
    def test_matches_popularity(self):
        rng = np.random.default_rng(0)
        pop = np.array([0.8, 0.2])
        phase = Stationary(pop)
        pages = phase.sample(20_000, rng)
        assert (pages == 0).mean() == pytest.approx(0.8, abs=0.02)

    def test_rejects_bad_popularity(self):
        with pytest.raises(ValueError):
            Stationary(np.array([]))
        with pytest.raises(ValueError):
            Stationary(np.zeros(4))


class TestRotatingWorkingSet:
    def test_window_pages_boosted(self):
        rng = np.random.default_rng(1)
        phase = RotatingWorkingSet(
            uniform_popularity(100), window_fraction=0.1, boost=50.0,
            accesses_per_phase=1_000_000,
        )
        pages = phase.sample(20_000, rng)
        start = phase.current_window_start()
        window = set((start + np.arange(10)) % 100)
        in_window = np.isin(pages, list(window)).mean()
        assert in_window > 0.7

    def test_window_rotates(self):
        rng = np.random.default_rng(2)
        phase = RotatingWorkingSet(
            uniform_popularity(100), window_fraction=0.1,
            accesses_per_phase=1000, stride_fraction=1.0,
        )
        first = phase.current_window_start()
        phase.sample(1000, rng)
        assert phase.current_window_start() != first

    def test_reset_restores_phase(self):
        rng = np.random.default_rng(3)
        phase = RotatingWorkingSet(uniform_popularity(100),
                                   accesses_per_phase=10)
        phase.sample(100, rng)
        phase.reset()
        assert phase.current_window_start() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RotatingWorkingSet(uniform_popularity(10), window_fraction=0.0)
        with pytest.raises(ValueError):
            RotatingWorkingSet(uniform_popularity(10), boost=0.0)


class TestSweepMix:
    def test_sweep_fraction_zero_is_stationary(self):
        rng = np.random.default_rng(4)
        pop = zipf_popularity(50, 1.0)
        phase = SweepMix(pop, sweep_fraction=0.0)
        pages = phase.sample(5000, rng)
        assert (pages == 0).mean() == pytest.approx(pop[0], abs=0.05)

    def test_sweep_advances_through_footprint(self):
        rng = np.random.default_rng(5)
        phase = SweepMix(uniform_popularity(1000), sweep_fraction=1.0,
                         hits_per_page=10, sweep_start=0)
        seen = set()
        for _ in range(5):
            seen |= set(phase.sample(2000, rng).tolist())
        # 5 chunks x 200 pages per chunk = 1000 pages covered
        assert len(seen) == 1000

    def test_sweep_pages_hit_repeatedly(self):
        rng = np.random.default_rng(6)
        phase = SweepMix(uniform_popularity(100), sweep_fraction=1.0,
                         hits_per_page=16, sweep_start=0)
        pages = phase.sample(1600, rng)
        _, counts = np.unique(pages, return_counts=True)
        assert counts.min() >= 16

    def test_sweep_start_randomised_by_default(self):
        phase = SweepMix(uniform_popularity(1000))
        assert 0 <= phase._sweep_start < 1000

    def test_reset_restores_sweep(self):
        rng = np.random.default_rng(7)
        phase = SweepMix(uniform_popularity(100), sweep_start=5)
        phase.sample(1000, rng)
        phase.reset()
        assert phase._sweep_pos == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepMix(uniform_popularity(10), sweep_fraction=1.5)
        with pytest.raises(ValueError):
            SweepMix(uniform_popularity(10), hits_per_page=0)
