"""Tests for the word-density machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.wordmap import (
    SPARSITY_THRESHOLDS,
    WordDensityProfile,
    WordSelector,
    addresses_from,
)


class TestWordDensityProfile:
    def test_sampled_counts_match_cdf(self):
        targets = {4: 0.5, 8: 0.7, 16: 0.86, 32: 0.93, 48: 0.97}
        prof = WordDensityProfile(targets)
        rng = np.random.default_rng(0)
        counts = prof.sample_counts(50_000, rng)
        for n, p in targets.items():
            assert (counts <= n).mean() == pytest.approx(p, abs=0.02)

    def test_counts_in_range(self):
        prof = WordDensityProfile.dense()
        rng = np.random.default_rng(1)
        counts = prof.sample_counts(10_000, rng)
        assert counts.min() >= 1
        assert counts.max() <= 64

    def test_dense_factory_mostly_dense(self):
        prof = WordDensityProfile.dense(residual=0.08)
        rng = np.random.default_rng(2)
        counts = prof.sample_counts(20_000, rng)
        assert (counts > 48).mean() == pytest.approx(0.92, abs=0.02)

    def test_sparse_kv_factory(self):
        prof = WordDensityProfile.sparse_kv(at_16=0.86)
        rng = np.random.default_rng(3)
        counts = prof.sample_counts(20_000, rng)
        assert (counts <= 16).mean() == pytest.approx(0.86, abs=0.02)

    def test_rejects_decreasing_cdf(self):
        with pytest.raises(ValueError):
            WordDensityProfile({4: 0.5, 8: 0.4, 16: 0.6, 32: 0.7, 48: 0.8})

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            WordDensityProfile({4: -0.1, 8: 0.4, 16: 0.6, 32: 0.7, 48: 0.8})


class TestWordSelector:
    def test_active_words_distinct(self):
        sel = WordSelector(seed=0)
        for page in (0, 17, 12345):
            for count in (1, 16, 64):
                words = sel.active_words(page, count)
                assert len(set(words.tolist())) == count
                assert words.min() >= 0 and words.max() < 64

    def test_selection_stays_within_active_set(self):
        sel = WordSelector(seed=1)
        counts = np.full(10, 8, dtype=np.int64)
        rng = np.random.default_rng(0)
        pages = np.repeat(np.arange(10), 100)
        words = sel.select(pages, counts, rng)
        for page in range(10):
            allowed = set(sel.active_words(page, 8).tolist())
            chosen = set(words[pages == page].tolist())
            assert chosen <= allowed

    def test_skew_concentrates_on_fewer_words(self):
        sel = WordSelector(seed=2)
        counts = np.full(1, 32, dtype=np.int64)
        pages = np.zeros(20_000, dtype=np.int64)
        rng = np.random.default_rng(1)
        flat = sel.select(pages, counts, rng, skew=0.0)
        rng = np.random.default_rng(1)
        skewed = sel.select(pages, counts, rng, skew=1.0)

        def top_share(words):
            _, c = np.unique(words, return_counts=True)
            c.sort()
            return c[-4:].sum() / c.sum()

        assert top_share(skewed) > top_share(flat)

    def test_deterministic_per_seed(self):
        a = WordSelector(seed=5).active_words(42, 16)
        b = WordSelector(seed=5).active_words(42, 16)
        assert np.array_equal(a, b)

    @settings(max_examples=20)
    @given(st.integers(0, 1 << 30), st.integers(1, 64))
    def test_active_words_property(self, page, count):
        sel = WordSelector(seed=9)
        words = sel.active_words(page, count)
        assert len(np.unique(words)) == count


class TestAddressesFrom:
    def test_roundtrip(self):
        pages = np.array([3, 7], dtype=np.int64)
        words = np.array([5, 63], dtype=np.int64)
        pa = addresses_from(pages, words)
        assert list(pa >> np.uint64(12)) == [3, 7]
        assert list((pa >> np.uint64(6)) & np.uint64(63)) == [5, 63]

    def test_thresholds_constant(self):
        assert SPARSITY_THRESHOLDS == (4, 8, 16, 32, 48)
