"""Tests for the mechanistic YCSB/slab KV engine."""

import numpy as np
import pytest

from repro.analysis import from_trace
from repro.memory.address import PAGE_SIZE
from repro.workloads.ycsb import (
    SlabAllocator,
    YcsbMix,
    YcsbWorkload,
)


class TestSlabAllocator:
    def test_objects_do_not_overlap(self):
        alloc = SlabAllocator()
        spans = []
        rng = np.random.default_rng(0)
        for _ in range(500):
            size = int(rng.integers(16, 1025))
            addr, cls = alloc.allocate(size)
            spans.append((addr, addr + cls))
        spans.sort()
        for (_a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_same_class_packs_one_page(self):
        alloc = SlabAllocator()
        addrs = [alloc.allocate(100)[0] for _ in range(PAGE_SIZE // 128)]
        pages = {a // PAGE_SIZE for a in addrs}
        assert len(pages) == 1

    def test_class_rounding(self):
        alloc = SlabAllocator()
        _, cls = alloc.allocate(65)
        assert cls == 128

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            SlabAllocator().allocate(4096)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlabAllocator(size_classes=())
        with pytest.raises(ValueError):
            SlabAllocator(size_classes=(100,))  # not a 64 multiple


class TestYcsbWorkload:
    def make(self, **kw):
        defaults = dict(num_keys=5000, seed=1)
        defaults.update(kw)
        return YcsbWorkload(**defaults)

    def test_spec_latency_sensitive(self):
        wl = self.make()
        assert wl.spec.latency_sensitive
        assert wl.spec.footprint_pages > 0

    def test_trace_addresses_within_footprint(self):
        wl = self.make()
        pa = wl.trace(20_000)
        assert int(pa.max()) < wl.spec.footprint_pages * PAGE_SIZE
        assert (pa % 64 == 0).all()

    def test_request_touches_bucket_then_value(self):
        wl = self.make(num_keys=100)
        pa = wl.chunk_requests(1)
        # First access in the hash-table region, rest in the heap.
        heap_base = wl._bucket_pages * PAGE_SIZE
        assert int(pa[0]) < heap_base
        assert (pa[1:] >= heap_base).all()
        # Value words are consecutive.
        assert (np.diff(pa[1:]) == 64).all()

    def test_deterministic(self):
        a = self.make().trace(5000)
        b = self.make().trace(5000)
        assert np.array_equal(a, b)

    def test_restart(self):
        wl = self.make()
        a = wl.trace(5000)
        wl.restart()
        assert np.array_equal(a, wl.trace(5000))

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            YcsbMix(read_fraction=1.5)
        with pytest.raises(ValueError):
            YcsbWorkload(num_keys=0)


class TestEmergentSparsity:
    """The Figure 4 cross-validation: the slab layout *produces* the
    sparsity the calibrated Redis generator encodes."""

    def test_heap_pages_mostly_sparse(self):
        """Small values + a request window that covers a fraction of
        the keyspace leave most heap pages with ≤16 of 64 words
        touched — the Redis-class regime of Figure 4, emerging from
        the slab layout with no sparsity configured anywhere."""
        wl = YcsbWorkload(num_keys=60_000, seed=2)
        pa = wl.trace(150_000)
        heap_base = wl._bucket_pages * PAGE_SIZE
        prof = from_trace("ycsb", pa[pa >= heap_base])
        assert prof.at(16) > 0.7

    def test_requests_spread_wide_across_heap(self):
        """Zipfian keys scattered by the allocator spread traffic over
        most of the heap — the paper's 'uniform random memory
        accesses' character, despite the key-level skew."""
        wl = YcsbWorkload(num_keys=20_000, seed=3)
        pa = wl.trace(300_000)
        heap_base = wl._bucket_pages * PAGE_SIZE
        pages = (pa[pa >= heap_base] // PAGE_SIZE).astype(np.int64)
        counts = np.bincount(pages)
        touched = counts[counts > 0].astype(float)
        heap_pages = wl.spec.footprint_pages - wl._bucket_pages
        assert len(touched) > 0.5 * heap_pages
        top1 = np.sort(touched)[::-1][: max(1, len(touched) // 100)].sum()
        assert top1 / touched.sum() < 0.5

    def test_drivable_by_engine(self):
        from repro.sim import SimConfig, Simulation

        wl = YcsbWorkload(num_keys=3000, seed=4)
        cfg = SimConfig(total_accesses=60_000, chunk_size=30_000,
                        ddr_pages=256, cxl_pages=4096, checkpoints=1)
        result = Simulation(wl, cfg, policy="m5-hwt").run()
        assert result.p99_latency_us is not None
        assert result.promoted > 0
