"""Tests for trace capture, storage, and replay."""

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.workloads import (
    ReplayWorkload,
    capture,
    load_trace,
    save_trace,
    uniform_workload,
)


class TestCapture:
    def test_capture_without_filter(self):
        wl = uniform_workload(footprint_pages=64, seed=1)
        trace = capture(wl, 5000)
        assert trace.size == 5000
        assert trace.dtype == np.uint64

    def test_capture_with_llc_filter_shrinks(self):
        wl = uniform_workload(footprint_pages=16, seed=1)
        llc = SetAssociativeCache(capacity_bytes=64 * 512, ways=8)
        trace = capture(wl, 5000, llc=llc)
        assert 0 < trace.size < 5000

    def test_capture_matches_direct_trace(self):
        wl1 = uniform_workload(footprint_pages=64, seed=2)
        wl2 = uniform_workload(footprint_pages=64, seed=2)
        assert np.array_equal(capture(wl1, 2000), wl2.trace(2000))


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        wl = uniform_workload(footprint_pages=64, seed=3)
        trace = wl.trace(3000)
        path = save_trace(tmp_path / "t.npz", trace, wl.spec,
                          metadata={"note": "test"})
        loaded, spec, meta = load_trace(path)
        assert np.array_equal(loaded, trace)
        assert spec == wl.spec
        assert meta["note"] == "test"

    def test_version_check(self, tmp_path):
        import json

        wl = uniform_workload(footprint_pages=8, seed=0)
        header = {"version": 999, "spec": {}, "metadata": {}}
        np.savez_compressed(
            tmp_path / "bad.npz",
            addresses=wl.trace(10),
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            load_trace(tmp_path / "bad.npz")


class TestReplay:
    def test_replays_exactly(self):
        wl = uniform_workload(footprint_pages=64, seed=4)
        trace = wl.trace(1000)
        replay = ReplayWorkload(trace, wl.spec)
        assert np.array_equal(replay.trace(1000), trace)

    def test_wraps_around(self):
        trace = np.arange(10, dtype=np.uint64) << np.uint64(6)
        replay = ReplayWorkload(trace, uniform_workload(footprint_pages=8).spec)
        out = replay.trace(25)
        assert np.array_equal(out[:10], trace)
        assert np.array_equal(out[10:20], trace)

    def test_restart(self):
        trace = np.arange(10, dtype=np.uint64) << np.uint64(6)
        replay = ReplayWorkload(trace, uniform_workload(footprint_pages=8).spec)
        a = replay.trace(7)
        replay.restart()
        b = replay.trace(7)
        assert np.array_equal(a, b)

    def test_from_file(self, tmp_path):
        wl = uniform_workload(footprint_pages=32, seed=5)
        trace = wl.trace(500)
        path = save_trace(tmp_path / "r.npz", trace, wl.spec)
        replay = ReplayWorkload.from_file(path)
        assert np.array_equal(replay.trace(500), trace)
        assert replay.spec.footprint_pages == 32

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ReplayWorkload(np.empty(0, dtype=np.uint64),
                           uniform_workload(footprint_pages=8).spec)

    def test_replay_drivable_by_engine(self):
        """A stored trace can drive a full simulation."""
        from repro.sim import SimConfig, Simulation

        wl = uniform_workload(footprint_pages=256, seed=6)
        replay = ReplayWorkload(wl.trace(30_000), wl.spec)
        cfg = SimConfig(total_accesses=60_000, chunk_size=30_000,
                        ddr_pages=64, checkpoints=1, migrate=False)
        result = Simulation(replay, cfg, policy="none").run()
        assert result.execution_time_s > 0
