"""Tests for trace capture, storage, and replay."""

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.workloads import (
    ReplayWorkload,
    TraceCorruptError,
    TraceExhausted,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    capture,
    load_trace,
    record,
    save_trace,
    uniform_workload,
)


class TestCapture:
    def test_capture_without_filter(self):
        wl = uniform_workload(footprint_pages=64, seed=1)
        trace = capture(wl, 5000)
        assert trace.size == 5000
        assert trace.dtype == np.uint64

    def test_capture_with_llc_filter_shrinks(self):
        wl = uniform_workload(footprint_pages=16, seed=1)
        llc = SetAssociativeCache(capacity_bytes=64 * 512, ways=8)
        trace = capture(wl, 5000, llc=llc)
        assert 0 < trace.size < 5000

    def test_capture_matches_direct_trace(self):
        wl1 = uniform_workload(footprint_pages=64, seed=2)
        wl2 = uniform_workload(footprint_pages=64, seed=2)
        assert np.array_equal(capture(wl1, 2000), wl2.trace(2000))


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        wl = uniform_workload(footprint_pages=64, seed=3)
        trace = wl.trace(3000)
        path = save_trace(tmp_path / "t.npz", trace, wl.spec,
                          metadata={"note": "test"})
        loaded, spec, meta = load_trace(path)
        assert np.array_equal(loaded, trace)
        assert spec == wl.spec
        assert meta["note"] == "test"

    def test_version_check(self, tmp_path):
        import json

        wl = uniform_workload(footprint_pages=8, seed=0)
        header = {"version": 999, "spec": {}, "metadata": {}}
        np.savez_compressed(
            tmp_path / "bad.npz",
            addresses=wl.trace(10),
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            load_trace(tmp_path / "bad.npz")


class TestV2Stream:
    """The chunked, append-only v2 trace format."""

    @staticmethod
    def chunks_of(n_chunks, chunk_size=256, seed=7):
        wl = uniform_workload(footprint_pages=128, seed=seed)
        return wl, [wl.trace(chunk_size) for _ in range(n_chunks)]

    def test_write_read_roundtrip(self, tmp_path):
        wl, chunks = self.chunks_of(4)
        path = tmp_path / "t.rtrace"
        with TraceWriter(path, wl.spec, metadata={"note": "v2"}) as w:
            for c in chunks:
                w.append(c)
        with TraceReader(path) as r:
            got = [r.read_next() for _ in range(4)]
            assert all(np.array_equal(g, c) for g, c in zip(got, chunks))
            assert r.read_next() is None  # footer reached
            assert r.complete
            assert r.total_addresses == 4 * 256
            assert r.spec == wl.spec
            assert r.metadata["note"] == "v2"

    def test_tail_readable_while_writing(self, tmp_path):
        """The service tails a file its producer has not sealed yet."""
        wl, chunks = self.chunks_of(3)
        path = tmp_path / "live.rtrace"
        writer = TraceWriter(path, wl.spec)
        reader = TraceReader(path)
        assert reader.read_next() is None  # nothing appended yet
        writer.append(chunks[0])
        got = reader.read_next()
        assert np.array_equal(got, chunks[0])
        # In flight: no footer, so the reader reports "not yet" —
        # not an error, not completion.
        assert reader.read_next() is None
        assert not reader.complete
        assert reader.total_addresses is None
        writer.append(chunks[1])
        writer.append(chunks[2])
        assert np.array_equal(reader.read_next(), chunks[1])
        writer.close()
        assert np.array_equal(reader.read_next(), chunks[2])
        assert reader.read_next() is None
        assert reader.complete
        assert reader.total_addresses == 3 * 256
        reader.close()

    def test_torn_tail_is_in_flight_not_error(self, tmp_path):
        """A half-written block (crashed writer) must read as a clean
        prefix, never as corruption."""
        wl, chunks = self.chunks_of(2)
        path = tmp_path / "torn.rtrace"
        writer = TraceWriter(path, wl.spec)
        writer.append(chunks[0])
        boundary = writer._fh.tell()
        writer.append(chunks[1])
        writer.close()
        data = path.read_bytes()
        torn = tmp_path / "crashed.rtrace"
        torn.write_bytes(data[:boundary + 7])  # mid-second-block
        with TraceReader(torn) as r:
            assert np.array_equal(r.read_next(), chunks[0])
            assert r.read_next() is None
            assert not r.complete

    def test_truncated_header_raises_and_closes_the_handle(
        self, tmp_path, monkeypatch
    ):
        """A reader that dies parsing the header must not leak its
        file handle: the constructor raises *after* closing it."""
        import builtins

        from repro.workloads.traceio import V2_MAGIC

        wl, chunks = self.chunks_of(1)
        path = tmp_path / "ok.rtrace"
        with TraceWriter(path, wl.spec) as w:
            w.append(chunks[0])
        bad = tmp_path / "truncated.rtrace"
        # Valid magic, then the file ends mid header-length word.
        bad.write_bytes(path.read_bytes()[: len(V2_MAGIC) + 2])

        opened = []
        real_open = builtins.open

        def spy(*args, **kwargs):
            fh = real_open(*args, **kwargs)
            opened.append(fh)
            return fh

        monkeypatch.setattr(builtins, "open", spy)
        with pytest.raises(TraceCorruptError):
            TraceReader(bad)
        assert opened, "reader never opened the file?"
        assert all(fh.closed for fh in opened)

    def test_bad_magic_raises_and_closes_the_handle(
        self, tmp_path, monkeypatch
    ):
        import builtins

        bad = tmp_path / "alien.rtrace"
        bad.write_bytes(b"NOTATRACE-FORMAT")

        opened = []
        real_open = builtins.open

        def spy(*args, **kwargs):
            fh = real_open(*args, **kwargs)
            opened.append(fh)
            return fh

        monkeypatch.setattr(builtins, "open", spy)
        with pytest.raises(TraceFormatError):
            TraceReader(bad)
        assert opened and all(fh.closed for fh in opened)

    def test_crc_corruption_raises(self, tmp_path):
        wl, chunks = self.chunks_of(2)
        path = tmp_path / "ok.rtrace"
        writer = TraceWriter(path, wl.spec)
        writer.append(chunks[0])
        payload_mid = writer._fh.tell() - 4  # inside chunk 0's payload
        writer.append(chunks[1])
        writer.close()
        data = bytearray(path.read_bytes())
        data[payload_mid] ^= 0xFF
        bad = tmp_path / "bad.rtrace"
        bad.write_bytes(bytes(data))
        with TraceReader(bad) as r:
            with pytest.raises(TraceCorruptError):
                r.read_next()

    def test_skip_repositions_without_decoding(self, tmp_path):
        wl, chunks = self.chunks_of(5)
        path = tmp_path / "skip.rtrace"
        with TraceWriter(path, wl.spec) as w:
            for c in chunks:
                w.append(c)
        with TraceReader(path) as r:
            assert r.skip(3) == 3
            assert r.chunks_read == 3
            assert np.array_equal(r.read_next(), chunks[3])
            assert np.array_equal(r.read_next(), chunks[4])
            assert r.read_next() is None
        # Skipping past the end stops at the footer.
        with TraceReader(path) as r:
            assert r.skip(99) == 5
            assert r.complete

    def test_empty_chunks_are_dropped(self, tmp_path):
        wl, chunks = self.chunks_of(1)
        path = tmp_path / "empty.rtrace"
        with TraceWriter(path, wl.spec) as w:
            w.append(np.empty(0, dtype=np.uint64))
            w.append(chunks[0])
            w.append(np.empty(0, dtype=np.uint64))
            assert w.chunks_written == 1
        with TraceReader(path) as r:
            assert np.array_equal(r.read_all(), chunks[0])

    def test_load_trace_autodetects_v2(self, tmp_path):
        wl, chunks = self.chunks_of(3)
        path = tmp_path / "auto.rtrace"
        with TraceWriter(path, wl.spec, metadata={"fmt": 2}) as w:
            for c in chunks:
                w.append(c)
        addresses, spec, meta = load_trace(path)
        assert np.array_equal(addresses, np.concatenate(chunks))
        assert spec == wl.spec
        assert meta["fmt"] == 2

    def test_load_trace_on_in_flight_file_loads_prefix(self, tmp_path):
        wl, chunks = self.chunks_of(2)
        path = tmp_path / "prefix.rtrace"
        writer = TraceWriter(path, wl.spec)
        writer.append(chunks[0])
        addresses, _, _ = load_trace(path)  # before close: prefix only
        assert np.array_equal(addresses, chunks[0])
        writer.close()

    def test_reader_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "not_a_trace"
        path.write_bytes(b"GARBAGE!" * 4)
        with pytest.raises(TraceFormatError):
            TraceReader(path)
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_record_streams_to_v2(self, tmp_path):
        wl = uniform_workload(footprint_pages=64, seed=9)
        twin = uniform_workload(footprint_pages=64, seed=9)
        path = record(wl, 2048, tmp_path / "rec.rtrace", chunk_size=512)
        addresses, spec, _ = load_trace(path)
        # Draw the twin with the same chunking: the generator's RNG
        # stream depends on per-draw sizes.
        expect = np.concatenate([twin.trace(512) for _ in range(4)])
        assert np.array_equal(addresses, expect)
        assert spec == wl.spec

    def test_record_with_llc_filter(self, tmp_path):
        wl = uniform_workload(footprint_pages=16, seed=9)
        llc = SetAssociativeCache(capacity_bytes=64 * 512, ways=8)
        path = record(wl, 5000, tmp_path / "filt.rtrace", llc=llc)
        addresses, _, _ = load_trace(path)
        assert 0 < addresses.size < 5000

    def test_replay_from_v2_file(self, tmp_path):
        wl = uniform_workload(footprint_pages=32, seed=5)
        twin = uniform_workload(footprint_pages=32, seed=5)
        path = record(wl, 500, tmp_path / "rp.rtrace")
        replay = ReplayWorkload.from_file(path)
        assert np.array_equal(replay.trace(500), twin.trace(500))


class TestReplay:
    def test_replays_exactly(self):
        wl = uniform_workload(footprint_pages=64, seed=4)
        trace = wl.trace(1000)
        replay = ReplayWorkload(trace, wl.spec)
        assert np.array_equal(replay.trace(1000), trace)

    def test_wraps_around(self):
        trace = np.arange(10, dtype=np.uint64) << np.uint64(6)
        replay = ReplayWorkload(trace, uniform_workload(footprint_pages=8).spec)
        out = replay.trace(25)
        assert np.array_equal(out[:10], trace)
        assert np.array_equal(out[10:20], trace)

    def test_restart(self):
        trace = np.arange(10, dtype=np.uint64) << np.uint64(6)
        replay = ReplayWorkload(trace, uniform_workload(footprint_pages=8).spec)
        a = replay.trace(7)
        replay.restart()
        b = replay.trace(7)
        assert np.array_equal(a, b)

    def test_from_file(self, tmp_path):
        wl = uniform_workload(footprint_pages=32, seed=5)
        trace = wl.trace(500)
        path = save_trace(tmp_path / "r.npz", trace, wl.spec)
        replay = ReplayWorkload.from_file(path)
        assert np.array_equal(replay.trace(500), trace)
        assert replay.spec.footprint_pages == 32

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ReplayWorkload(np.empty(0, dtype=np.uint64),
                           uniform_workload(footprint_pages=8).spec)

    def test_replay_drivable_by_engine(self):
        """A stored trace can drive a full simulation."""
        from repro.sim import SimConfig, Simulation

        wl = uniform_workload(footprint_pages=256, seed=6)
        replay = ReplayWorkload(wl.trace(30_000), wl.spec)
        cfg = SimConfig(total_accesses=60_000, chunk_size=30_000,
                        ddr_pages=64, checkpoints=1, migrate=False)
        result = Simulation(replay, cfg, policy="none").run()
        assert result.execution_time_s > 0


class TestReplayWraps:
    """Regression: wrapping used to be silent — a truncated capture
    replayed as a plausible periodic workload with no trace of it."""

    @staticmethod
    def replay(n=10, strict=False):
        trace = np.arange(n, dtype=np.uint64) << np.uint64(6)
        spec = uniform_workload(footprint_pages=8).spec
        return ReplayWorkload(trace, spec, strict=strict)

    def test_wraps_counter_counts_passes(self):
        replay = self.replay(10)
        assert replay.wraps == 0
        replay.trace(25)  # 0..9, 0..9, 0..4
        assert replay.wraps == 2
        replay.trace(5)  # 5..9: reaches the end exactly, no wrap
        assert replay.wraps == 2
        replay.trace(1)  # 0 again: the wrap happens on this read
        assert replay.wraps == 3

    def test_exact_consumption_is_not_a_wrap(self):
        replay = self.replay(10)
        replay.trace(10)
        assert replay.wraps == 0
        assert replay.remaining == 10  # position wrapped to 0

    def test_restart_resets_wraps(self):
        replay = self.replay(10)
        replay.trace(25)
        replay.restart()
        assert replay.wraps == 0
        assert replay.remaining == 10

    def test_strict_raises_instead_of_wrapping(self):
        replay = self.replay(10, strict=True)
        replay.trace(7)
        with pytest.raises(TraceExhausted):
            replay.chunk(4)  # only 3 remain
        # Exact consumption stays legal in strict mode.
        out = replay.chunk(3)
        assert out.size == 3
        assert replay.wraps == 0

    def test_engine_surfaces_wraps_in_result_and_timeline(self):
        from repro.sim import SimConfig, Simulation

        wl = uniform_workload(footprint_pages=256, seed=6)
        replay = ReplayWorkload(wl.trace(30_000), wl.spec)
        cfg = SimConfig(total_accesses=90_000, chunk_size=30_000,
                        ddr_pages=64, checkpoints=1, migrate=False)
        result = Simulation(replay, cfg, policy="none").run()
        assert result.extra["replay_wraps"] == 2.0
        wrap_events = [e for e in result.timeline
                       if e["stage"] == "replay.wrap"]
        assert [e["total_wraps"] for e in wrap_events] == [1, 2]

    def test_engine_reports_zero_wraps_when_trace_suffices(self):
        from repro.sim import SimConfig, Simulation

        wl = uniform_workload(footprint_pages=256, seed=6)
        replay = ReplayWorkload(wl.trace(30_000), wl.spec)
        cfg = SimConfig(total_accesses=30_000, chunk_size=15_000,
                        ddr_pages=64, checkpoints=1, migrate=False)
        result = Simulation(replay, cfg, policy="none").run()
        assert result.extra["replay_wraps"] == 0.0
        assert not any(e["stage"] == "replay.wrap" for e in result.timeline)

    def test_engine_strict_replay_aborts_on_exhaustion(self):
        from repro.sim import SimConfig, Simulation

        wl = uniform_workload(footprint_pages=256, seed=6)
        replay = ReplayWorkload(wl.trace(30_000), wl.spec, strict=True)
        cfg = SimConfig(total_accesses=60_000, chunk_size=30_000,
                        ddr_pages=64, checkpoints=1, migrate=False)
        with pytest.raises(TraceExhausted):
            Simulation(replay, cfg, policy="none").run()
