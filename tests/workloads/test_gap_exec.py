"""Tests for the executable GAP kernels, including cross-validation of
the statistical generators' shapes against mechanistic traces."""

import numpy as np
import pytest

from repro.memory.address import PAGE_SIZE
from repro.workloads.graph import preferential_attachment
from repro.workloads.gap_exec import (
    GraphAddressMap,
    bfs_trace,
    connected_components_trace,
    pagerank_trace,
    trace_chunks,
)


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment(2000, m=4, seed=0)


class TestAddressMap:
    def test_vertex_addresses_dense(self, graph):
        amap = GraphAddressMap(graph)
        addrs = amap.vertex_addr(np.array([0, 1]))
        assert addrs[1] - addrs[0] == 64

    def test_edge_region_after_vertices(self, graph):
        amap = GraphAddressMap(graph)
        assert int(amap.edge_addr(np.array([0]))[0]) >= amap.edge_base

    def test_footprint_covers_everything(self, graph):
        amap = GraphAddressMap(graph)
        end = amap.footprint_pages * PAGE_SIZE
        assert int(amap.edge_addr(np.array([graph.num_edges - 1]))[0]) < end


class TestBfs:
    def test_visits_whole_component(self, graph):
        trace = bfs_trace(graph, source=0)
        amap = GraphAddressMap(graph)
        vertex_accesses = trace[trace < amap.edge_base]
        vertices_touched = set((vertex_accesses // 64).tolist())
        # PA graphs are connected: every vertex state gets touched.
        assert len(vertices_touched) == graph.num_nodes

    def test_scans_every_edge_once(self, graph):
        trace = bfs_trace(graph, source=0)
        amap = GraphAddressMap(graph)
        edge_accesses = int((trace >= amap.edge_base).sum())
        # Every adjacency list is scanned exactly once (8 edges/word,
        # so between E/8 and E accesses).
        assert graph.num_edges // 8 <= edge_accesses <= graph.num_edges

    def test_adjacency_scan_locality_shifts(self, graph):
        """Early and late slices of the BFS trace scan different edge
        pages (adjacency lists are disjoint CSR spans) — the drift the
        statistical generators model with RotatingWorkingSet."""
        trace = bfs_trace(graph, source=0)
        amap = GraphAddressMap(graph)
        edge_pa = trace[trace >= amap.edge_base]
        slice_len = max(1, len(edge_pa) // 20)
        early = set((edge_pa[:slice_len] // PAGE_SIZE).tolist())
        late = set((edge_pa[-slice_len:] // PAGE_SIZE).tolist())
        jaccard = len(early & late) / len(early | late)
        assert jaccard < 0.8


class TestPageRank:
    def test_trace_length_scales_with_iterations(self, graph):
        one = pagerank_trace(graph, iterations=1)
        two = pagerank_trace(graph, iterations=2)
        assert two.size == 2 * one.size

    def test_hub_pages_hot(self, graph):
        """The gather phase heats hub vertex pages in proportion to
        degree — validating the statistical pr generator's premise."""
        trace = pagerank_trace(graph, iterations=1)
        amap = GraphAddressMap(graph)
        vertex_pa = trace[trace < amap.edge_base]
        counts = np.bincount((vertex_pa // PAGE_SIZE).astype(np.int64))
        touched = counts[counts > 0]
        assert touched.max() > 5 * np.median(touched)


class TestConnectedComponents:
    def test_active_set_shrinks(self, graph):
        trace = connected_components_trace(graph, max_rounds=8)
        assert trace.size > 0

    def test_converges_before_round_cap(self, graph):
        short = connected_components_trace(graph, max_rounds=50)
        shorter = connected_components_trace(graph, max_rounds=8)
        # Label propagation on a PA graph converges quickly; extra
        # round budget adds nothing once converged.
        assert short.size <= shorter.size * 3


class TestChunks:
    def test_trace_chunks(self, graph):
        trace = pagerank_trace(graph, iterations=1)
        chunks = list(trace_chunks(trace, 1000))
        assert sum(c.size for c in chunks) == trace.size
        assert all(c.size <= 1000 for c in chunks)
