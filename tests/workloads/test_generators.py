"""Tests for the benchmark generators and the registry."""

import numpy as np
import pytest

from repro.analysis import from_trace
from repro.workloads import (
    MEMORY_INTENSIVE,
    SPARSITY_SET,
    TRACKER_SWEEP_SET,
    SyntheticWorkload,
    build,
    registry,
    spec_of,
    uniform_workload,
)
from repro.workloads.base import SyntheticParams, WorkloadSpec
from repro.workloads.wordmap import WordDensityProfile
from repro.workloads.zipf import uniform_popularity


class TestRegistry:
    def test_twelve_memory_intensive(self):
        assert len(MEMORY_INTENSIVE) == 12

    def test_sparsity_set_adds_kv_extras(self):
        assert set(SPARSITY_SET) - set(MEMORY_INTENSIVE) == {
            "memcached", "cachelib",
        }

    def test_tracker_sweep_set_matches_paper(self):
        """§7.1 traces: cactuBSSN, fotonik3d, liblinear, mcf,
        PageRank, roms."""
        assert set(TRACKER_SWEEP_SET) == {
            "cactubssn", "fotonik3d", "liblinear", "mcf", "pr", "roms",
        }

    def test_footprints_scale_with_paper_gb(self):
        # Table 3: tc is 5.0GB, bc is 6.9GB.
        assert spec_of("tc").footprint_pages < spec_of("bc").footprint_pages
        ratio = spec_of("bc").footprint_pages / spec_of("tc").footprint_pages
        assert ratio == pytest.approx(6.9 / 5.0, rel=0.01)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            registry.build("doom")

    def test_redis_latency_sensitive(self):
        assert spec_of("redis").latency_sensitive
        assert not spec_of("mcf").latency_sensitive

    def test_capacities(self):
        assert registry.ddr_capacity_pages() == 3 * registry.PAGES_PER_GB
        assert registry.cxl_capacity_pages() == 8 * registry.PAGES_PER_GB

    def test_all_benchmarks_buildable(self):
        for name in registry.names():
            wl = build(name, seed=0)
            assert isinstance(wl, SyntheticWorkload)
            assert wl.spec.name == name


class TestTraceShape:
    @pytest.mark.parametrize("name", ["mcf", "redis", "pr", "bfs"])
    def test_addresses_within_footprint(self, name):
        wl = build(name, seed=0)
        pa = wl.trace(20_000)
        pages = pa >> np.uint64(12)
        assert int(pages.max()) < wl.spec.footprint_pages
        # 64B aligned:
        assert (pa & np.uint64(63) == 0).all()

    def test_chunks_cover_total(self):
        wl = build("mcf", seed=0)
        chunks = list(wl.chunks(10_000, chunk_size=3000))
        assert [len(c) for c in chunks] == [3000, 3000, 3000, 1000]

    def test_deterministic_per_seed(self):
        a = build("redis", seed=5).trace(5000)
        b = build("redis", seed=5).trace(5000)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = build("redis", seed=5).trace(5000)
        b = build("redis", seed=6).trace(5000)
        assert not np.array_equal(a, b)

    def test_restart_reproduces(self):
        wl = build("roms", seed=3)
        a = wl.trace(5000)
        wl.restart()
        b = wl.trace(5000)
        assert np.array_equal(a, b)


class TestCalibratedSparsity:
    def test_redis_sparse_pages(self):
        """Figure 4: most Redis pages have ≤16 of 64 words accessed."""
        wl = build("redis", seed=0)
        assert (wl.active_word_counts <= 16).mean() == pytest.approx(
            0.86, abs=0.04
        )

    def test_spec_dense_pages(self):
        """Figure 4: SPEC (except roms) pages are ≥75% dense."""
        for name in ("mcf", "cactubssn", "fotonik3d"):
            wl = build(name, seed=0)
            dense = (wl.active_word_counts > 48).mean()
            assert dense > 0.85, name

    def test_pagerank_densest_gap_kernel(self):
        pr = build("pr", seed=0)
        bfs = build("bfs", seed=0)
        assert (pr.active_word_counts > 48).mean() > (
            bfs.active_word_counts > 48
        ).mean()

    def test_measured_sparsity_tracks_configuration(self):
        wl = build("redis", seed=1)
        prof = from_trace("redis", wl.trace(300_000))
        # Observed uniques can only undershoot the configured actives.
        assert prof.at(16) >= 0.80


class TestCalibratedSkew:
    def page_counts(self, name, n=400_000):
        wl = build(name, seed=0)
        pages = wl.trace(n) >> np.uint64(12)
        return np.bincount(pages.astype(np.int64),
                           minlength=wl.spec.footprint_pages)

    def test_liblinear_most_skewed(self):
        """Figure 10: Liblinear has the most skewed access CDF — its
        hottest 1% of pages (the model state) carry far more traffic
        than mcf's hottest 1%."""
        def top1_share(counts):
            c = np.sort(counts)[::-1].astype(float)
            k = max(1, len(c) // 100)
            return c[:k].sum() / c.sum()

        assert top1_share(self.page_counts("liblinear")) > 3 * top1_share(
            self.page_counts("mcf")
        )

    def test_mcf_flat(self):
        """mcf's *active* pages carry nearly even heat (the Figure 3
        'good case'); a cold tail of rarely-touched pages sits below."""
        counts = self.page_counts("mcf")
        active = counts[counts > np.quantile(counts, 0.65)]
        assert np.quantile(active, 0.99) / np.quantile(active, 0.5) < 3

    def test_roms_hot_tail(self):
        """§7.2: roms p99 page is an order of magnitude over p50."""
        counts = self.page_counts("roms")
        touched = counts[counts > 0]
        ratio = np.quantile(touched, 0.99) / np.quantile(touched, 0.5)
        assert ratio > 8


class TestSyntheticWorkloadValidation:
    def test_popularity_length_checked(self):
        spec = WorkloadSpec(name="x", footprint_pages=10)
        params = SyntheticParams(
            popularity=uniform_popularity(5),
            word_density=WordDensityProfile.dense(),
        )
        with pytest.raises(ValueError):
            SyntheticWorkload(spec, params)

    def test_uniform_workload_helper(self):
        wl = uniform_workload(footprint_pages=64, seed=1)
        pa = wl.trace(1000)
        assert (pa >> np.uint64(12)).max() < 64
