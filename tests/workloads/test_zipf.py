"""Tests for the popularity-distribution builders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import zipf


class TestZipf:
    def test_normalised(self):
        p = zipf.zipf_popularity(100, 1.0)
        assert p.sum() == pytest.approx(1.0)

    def test_rank_ordered(self):
        p = zipf.zipf_popularity(10, 1.0)
        assert (np.diff(p) <= 0).all()

    def test_zero_exponent_uniform(self):
        p = zipf.zipf_popularity(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf.zipf_popularity(0, 1.0)
        with pytest.raises(ValueError):
            zipf.zipf_popularity(10, -1.0)

    @settings(max_examples=20)
    @given(st.integers(1, 500), st.floats(0.0, 3.0))
    def test_always_a_distribution(self, n, s):
        p = zipf.zipf_popularity(n, s)
        assert p.sum() == pytest.approx(1.0)
        assert (p > 0).all()


class TestMixture:
    def test_tiers_have_requested_heat_ratios(self):
        p = zipf.mixture_popularity(100, [(0.1, 10.0), (0.9, 1.0)])
        assert p[0] / p[-1] == pytest.approx(10.0)
        assert p.sum() == pytest.approx(1.0)

    def test_tier_sizes(self):
        p = zipf.mixture_popularity(100, [(0.1, 10.0), (0.9, 1.0)])
        assert (p == p[0]).sum() == 10

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            zipf.mixture_popularity(100, [(0.5, 2.0)])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            zipf.mixture_popularity(100, [(0.5, -1.0), (0.5, 1.0)])


class TestBlendAndShuffle:
    def test_blend_weights(self):
        a = zipf.uniform_popularity(4)
        b = np.array([1.0, 0, 0, 0])
        out = zipf.blend((1.0, a), (1.0, b))
        assert out.sum() == pytest.approx(1.0)
        assert out[0] == pytest.approx(0.625)

    def test_blend_validates_lengths(self):
        with pytest.raises(ValueError):
            zipf.blend((1.0, np.ones(3)), (1.0, np.ones(4)))

    def test_blend_requires_components(self):
        with pytest.raises(ValueError):
            zipf.blend()

    def test_shuffled_preserves_multiset(self):
        p = zipf.zipf_popularity(50, 1.0)
        s = zipf.shuffled(p, seed=1)
        assert sorted(s) == pytest.approx(sorted(p))
        assert not np.array_equal(s, p)

    def test_spatially_clustered_preserves_mass(self):
        p = zipf.zipf_popularity(100, 1.0)
        s = zipf.spatially_clustered(p, cluster_pages=8, seed=0)
        assert s.sum() == pytest.approx(1.0)

    def test_spatially_clustered_keeps_clusters_together(self):
        p = np.zeros(32)
        p[:4] = 1.0  # one hot cluster of 4
        s = zipf.spatially_clustered(p / p.sum(), cluster_pages=4, seed=3)
        hot = np.nonzero(s > 0)[0]
        assert len(hot) == 4
        assert hot[-1] - hot[0] == 3  # still contiguous


class TestSamplePages:
    def test_respects_distribution(self):
        rng = np.random.default_rng(0)
        p = np.array([0.9, 0.1])
        pages = zipf.sample_pages(p, 10_000, rng)
        assert (pages == 0).mean() == pytest.approx(0.9, abs=0.02)

    def test_all_pages_in_range(self):
        rng = np.random.default_rng(0)
        p = zipf.uniform_popularity(7)
        pages = zipf.sample_pages(p, 1000, rng)
        assert pages.min() >= 0 and pages.max() < 7
