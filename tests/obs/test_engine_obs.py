"""Engine integration: observability must measure, never perturb."""

from repro.obs import Observability
from repro.obs.exporters import parse_prometheus, to_prometheus
from repro.sim import SimConfig, Simulation
from repro.sim.sweep import run_one
from repro.workloads import uniform_workload


def small_config(**kw):
    defaults = dict(
        total_accesses=120_000,
        chunk_size=30_000,
        ddr_pages=512,
        cxl_pages=4096,
        checkpoints=3,
        pages_per_gb=1024,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


def run(policy="m5-hpt", obs=None, **cfg):
    sim = Simulation(
        uniform_workload(footprint_pages=1024, seed=0),
        small_config(**cfg),
        policy=policy,
        obs=obs,
    )
    return sim.run()


class TestEquivalence:
    def test_instrumented_run_is_bit_identical(self):
        plain = run()
        instrumented = run(obs=Observability(metrics=True, tracing=True))
        assert instrumented.execution_time_s == plain.execution_time_s
        assert instrumented.app_time_s == plain.app_time_s
        assert instrumented.promoted == plain.promoted
        assert instrumented.demoted == plain.demoted
        assert instrumented.nr_pages_ddr == plain.nr_pages_ddr
        assert instrumented.ratio_checkpoints == plain.ratio_checkpoints

    def test_async_mode_also_identical(self):
        plain = run(migration_mode="async")
        instrumented = run(
            migration_mode="async",
            obs=Observability(metrics=True, tracing=True),
        )
        assert instrumented.execution_time_s == plain.execution_time_s
        assert instrumented.extra == plain.extra


class TestEngineMetrics:
    def test_snapshot_attached_and_consistent(self):
        obs = Observability(metrics=True, tracing=False)
        result = run(obs=obs)
        assert result.metrics
        flat = parse_prometheus(to_prometheus(result.metrics))
        assert flat["sim_epochs_total"] == small_config().num_epochs
        assert flat["sim_migrated_pages_total{direction=\"promote\"}"] == (
            float(result.promoted)
        )
        assert flat["tier_resident_pages{tier=\"ddr\"}"] == (
            float(result.nr_pages_ddr)
        )
        assert flat["tier_resident_pages{tier=\"cxl\"}"] == (
            float(result.nr_pages_cxl)
        )
        # accesses split by tier covers the whole run
        total = (flat["sim_accesses_total{tier=\"ddr\"}"]
                 + flat["sim_accesses_total{tier=\"cxl\"}"])
        assert total == float(small_config().total_accesses)

    def test_stage_histogram_counts_every_epoch(self):
        obs = Observability(metrics=True, tracing=False)
        run(obs=obs)
        fam = obs.registry.get("pipeline_stage_seconds")
        epochs = small_config().num_epochs
        for labels, hist in fam.series():
            assert hist.count == epochs, labels

    def test_async_outcome_counters_match_extra(self):
        obs = Observability(metrics=True, tracing=False)
        result = run(migration_mode="async", obs=obs)
        flat = parse_prometheus(to_prometheus(result.metrics))
        assert flat.get("migration_outcomes_total{outcome=\"committed\"}",
                        0.0) == result.extra.get("mig_committed", 0.0)

    def test_disabled_obs_attaches_nothing(self):
        result = run()
        assert result.metrics == {}


class TestEngineTracing:
    def test_stage_spans_cover_the_run(self):
        obs = Observability(metrics=False, tracing=True)
        result = run(obs=obs)
        names = {r.name for r in obs.tracer.spans}
        assert names >= {
            "run", "stage.trace", "stage.translate", "stage.snoop",
            "stage.policy", "stage.migrate", "stage.perf",
            "stage.checkpoint",
        }
        assert obs.tracer.coverage() >= 0.95
        # sim-time accounting: the root span covers the simulated run
        root = next(r for r in obs.tracer.spans if r.name == "run")
        assert root.dur_sim_s == result.execution_time_s

    def test_async_tick_nests_under_migrate(self):
        obs = Observability(metrics=False, tracing=True)
        run(migration_mode="async", obs=obs)
        ticks = [r for r in obs.tracer.spans if r.name == "migrate.tick"]
        assert ticks and all(r.depth == 2 for r in ticks)
        migrate = next(
            r for r in obs.tracer.spans
            if r.name == "stage.migrate" and r.epoch == ticks[0].epoch
        )
        assert migrate.child_wall_s > 0.0


class TestSweepMetrics:
    def test_run_one_with_metrics_flag(self):
        result = run_one(
            "mcf", "m5-hpt", small_config(),
            seed=1, pages_per_gb=1024, with_metrics=True,
        )
        assert result.metrics
        names = {m["name"] for m in result.metrics["metrics"]}
        assert "sim_epochs_total" in names

    def test_run_one_default_is_uninstrumented(self):
        result = run_one(
            "mcf", "m5-hpt", small_config(), seed=1, pages_per_gb=1024
        )
        assert result.metrics == {}
