"""Tests for span tracing: nesting, the flame table, and coverage."""

import time

from repro.obs.tracing import NULL_SPAN, Tracer
from repro.sim.telemetry import RingBufferSink, TelemetryBus


class TestSpanNesting:
    def test_depth_and_parent_child_attribution(self):
        tracer = Tracer()
        with tracer.span("run"), tracer.span("stage.migrate"), tracer.span("migrate.tick"):
            time.sleep(0.002)
        by_name = {r.name: r for r in tracer.spans}
        assert by_name["run"].depth == 0
        assert by_name["stage.migrate"].depth == 1
        assert by_name["migrate.tick"].depth == 2
        # child time flows up exactly one level
        assert by_name["stage.migrate"].child_wall_s == (
            by_name["migrate.tick"].dur_wall_s
        )
        assert by_name["run"].child_wall_s == (
            by_name["stage.migrate"].dur_wall_s
        )
        # self time excludes children but never goes negative
        assert 0.0 <= by_name["stage.migrate"].self_wall_s <= (
            by_name["stage.migrate"].dur_wall_s
        )

    def test_spans_record_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("outer"), tracer.span("inner"):
            pass
        assert [r.name for r in tracer.spans] == ["inner", "outer"]

    def test_epoch_stamped_from_tracer(self):
        tracer = Tracer()
        tracer.current_epoch = 7
        with tracer.span("stage.trace"):
            pass
        assert tracer.spans[0].epoch == 7

    def test_sim_clock_window(self):
        tracer = Tracer()
        clock = {"now": 1.0}
        tracer.sim_clock = lambda: clock["now"]
        with tracer.span("stage.perf"):
            clock["now"] = 3.5
        (record,) = tracer.spans
        assert record.start_sim_s == 1.0
        assert record.dur_sim_s == 2.5

    def test_set_attaches_attrs(self):
        tracer = Tracer()
        with tracer.span("migrate.tick") as span:
            span.set(attempted=4, committed=3)
        assert tracer.spans[0].attrs == {"attempted": 4, "committed": 3}


class TestDisabledTracer:
    def test_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything")
        assert span is NULL_SPAN
        with span as s:
            s.set(ignored=1)
        assert tracer.spans == []


class TestBusPublication:
    def test_completed_spans_publish_to_bus(self):
        ring = RingBufferSink(capacity=16)
        tracer = Tracer(bus=TelemetryBus([ring]))
        with tracer.span("stage.trace"):
            pass
        events = [e for e in ring.events if e["stage"] == "span"]
        assert len(events) == 1
        assert events[0]["name"] == "stage.trace"
        assert events[0]["wall_us"] >= 0.0

    def test_publish_spans_opt_out(self):
        ring = RingBufferSink(capacity=16)
        tracer = Tracer(bus=TelemetryBus([ring]))
        tracer.publish_spans = False
        with tracer.span("stage.trace"):
            pass
        assert len(ring.events) == 0
        assert len(tracer.spans) == 1


class TestAggregation:
    def test_flame_table_rows_and_ordering(self):
        tracer = Tracer()
        with tracer.span("run"):
            for _ in range(3):
                with tracer.span("stage.snoop"):
                    time.sleep(0.001)
        table = tracer.flame_table()
        assert [row["name"] for row in table] == ["run", "stage.snoop"]
        snoop = table[1]
        assert snoop["count"] == 3
        assert snoop["total_s"] > 0.0
        # leaf spans: self == total
        assert snoop["self_s"] == snoop["total_s"]

    def test_coverage_of_fully_instrumented_root(self):
        tracer = Tracer()
        with tracer.span("run"):
            for _ in range(5):
                with tracer.span("stage.trace"):
                    time.sleep(0.002)
        assert tracer.coverage() >= 0.95

    def test_coverage_zero_without_root(self):
        assert Tracer().coverage() == 0.0

    def test_clear_resets_state(self):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        tracer.clear()
        assert tracer.spans == []
