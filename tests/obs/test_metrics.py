"""Tests for the metrics registry: families, series, and snapshots."""

import json

import pytest

from repro.obs.metrics import (
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    log2_buckets,
)


class TestBuckets:
    def test_log2_buckets_are_powers_of_two(self):
        assert log2_buckets(-2, 2) == (0.25, 0.5, 1.0, 2.0, 4.0)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            log2_buckets(3, 1)

    def test_duration_buckets_span_us_to_seconds(self):
        assert DURATION_BUCKETS[0] == 2.0 ** -20
        assert DURATION_BUCKETS[-1] == 16.0


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.inc(3)
        g.dec(5)
        assert g.value == 8.0

    def test_histogram_le_semantics(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 3.0, 100.0):
            h.observe(v)
        # le=1 holds 0.5 and the exactly-1.0 observation; 100 -> +Inf.
        assert h.cumulative() == [
            (1.0, 2), (2.0, 2), (4.0, 3), (float("inf"), 4),
        ]
        assert h.count == 4
        assert h.sum == 104.5

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total", "other help ignored")
        assert a is b
        assert len(reg.families()) == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("y_total", labels=("tier",))
        with pytest.raises(ValueError):
            reg.counter("y_total", labels=("stage",))

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad-name")

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("acc_total", labels=("tier",))
        fam.labels(tier="ddr").inc(2)
        fam.labels("cxl").inc(5)
        assert fam.labels("ddr").value == 2.0
        assert fam.labels("cxl").value == 5.0

    def test_labelless_family_proxies_single_series(self):
        reg = MetricsRegistry()
        fam = reg.gauge("depth")
        fam.set(7)
        assert fam.labels().value == 7.0

    def test_wrong_label_arity_rejected(self):
        fam = MetricsRegistry().counter("z_total", labels=("tier",))
        with pytest.raises(ValueError):
            fam.labels()
        with pytest.raises(ValueError):
            fam.labels(stage="x")


class TestDisabledRegistry:
    def test_hands_out_shared_null_metric(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total")
        assert c is NULL_METRIC
        # the whole instrument surface is a no-op
        c.inc()
        c.dec()
        c.set(3)
        c.observe(1.0)
        assert c.labels(tier="ddr") is NULL_METRIC
        assert reg.families() == []

    def test_stores_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("x_total").inc(100)
        assert reg.snapshot() == {"metrics": []}


class TestHistogramQuantile:
    def make(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 3.0):
            h.observe(v)
        return h

    def test_interpolates_within_bucket(self):
        h = self.make()
        # rank 2 of 4 lands at the top of the first bucket (2 obs <= 1)
        assert h.quantile(0.5) == pytest.approx(1.0)
        # rank 1 is halfway through the first bucket, from 0
        assert h.quantile(0.25) == pytest.approx(0.5)

    def test_first_bucket_interpolates_from_zero(self):
        h = Histogram(bounds=(10.0,))
        h.observe(3.0)
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_inf_bucket_clamps_to_last_bound(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.quantile(0.99) == 2.0

    def test_empty_is_nan_and_range_checked(self):
        h = Histogram(bounds=(1.0,))
        assert h.quantile(0.5) != h.quantile(0.5)  # NaN
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_named_percentiles(self):
        h = self.make()
        assert h.p50() == h.quantile(0.50)
        assert h.p95() == h.quantile(0.95)
        assert h.p99() == h.quantile(0.99)
        assert h.p99() >= h.p95() >= h.p50()


class TestMerge:
    def shard(self):
        reg = MetricsRegistry()
        reg.counter("acc_total", "Accesses", labels=("tier",)).labels(
            tier="ddr"
        ).inc(10)
        reg.gauge("depth", "Queue depth").set(4.0)
        hist = reg.histogram("lat_seconds", "Latency", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(5.0)
        return reg

    def test_counters_accumulate(self):
        target = MetricsRegistry()
        target.merge(self.shard().snapshot())
        target.merge(self.shard().snapshot())
        assert target.get("acc_total").labels(tier="ddr").value == 20.0

    def test_gauges_last_write_wins(self):
        target = MetricsRegistry()
        target.merge(self.shard().snapshot())
        late = self.shard()
        late.get("depth").set(9.0)
        target.merge(late.snapshot())
        assert target.get("depth").labels().value == 9.0

    def test_histograms_accumulate_buckets_sum_count(self):
        target = MetricsRegistry()
        target.merge(self.shard().snapshot())
        target.merge(self.shard().snapshot())
        h = target.get("lat_seconds").labels()
        assert h.count == 4
        assert h.sum == 11.0
        assert h.cumulative() == [(1.0, 2), (2.0, 2), (float("inf"), 4)]

    def test_extra_labels_keep_shards_distinct(self):
        target = MetricsRegistry()
        for tenant in ("0", "1"):
            target.merge(self.shard().snapshot(),
                         extra_labels={"tenant": tenant})
        fam = target.get("acc_total")
        assert fam.label_names == ("tier", "tenant")
        assert fam.labels(tier="ddr", tenant="0").value == 10.0
        assert fam.labels(tier="ddr", tenant="1").value == 10.0

    def test_widens_conflicting_label_sets(self):
        target = MetricsRegistry()
        own = target.counter("slo_breaches_total", "Breaches",
                             labels=("rule",))
        own.labels(rule="deep").inc(2)
        target.merge(self.shard().snapshot(), extra_labels={"tenant": "3"})
        incoming = MetricsRegistry()
        incoming.counter("slo_breaches_total", "Breaches",
                         labels=("rule",)).labels(rule="deep").inc(5)
        target.merge(incoming.snapshot(), extra_labels={"tenant": "3"})
        fam = target.get("slo_breaches_total")
        assert fam.label_names == ("rule", "tenant")
        # pre-existing series re-keyed with "" padding, still reachable
        assert fam.labels(rule="deep", tenant="").value == 2.0
        assert fam.labels(rule="deep", tenant="3").value == 5.0

    def test_empty_series_families_are_skipped(self):
        source = MetricsRegistry()
        source.counter("never_touched_total", "Registered, no series")
        snap = source.snapshot()
        # a labelless counter materialises its single series lazily;
        # force the empty-series shape a labelled family produces
        snap["metrics"] = [dict(m, series=[]) for m in snap["metrics"]]
        target = MetricsRegistry()
        target.merge(snap)
        assert target.get("never_touched_total") is None

    def test_kind_conflict_rejected(self):
        target = MetricsRegistry()
        target.counter("x_total").inc()
        bad = MetricsRegistry()
        bad.gauge("x_total").set(1.0)
        with pytest.raises(ValueError):
            target.merge(bad.snapshot())

    def test_disabled_target_is_a_noop(self):
        target = MetricsRegistry(enabled=False)
        target.merge(self.shard().snapshot())
        assert target.snapshot() == {"metrics": []}

    def test_merge_round_trips_through_json(self):
        target = MetricsRegistry()
        target.merge(json.loads(json.dumps(self.shard().snapshot())),
                     extra_labels={"tenant": "7"})
        h = target.get("lat_seconds").labels(tenant="7")
        assert h.count == 2 and h.sum == 5.5


class TestSnapshot:
    def test_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(3)
        fam = reg.histogram("h_seconds", "a histogram", buckets=(1.0, 2.0))
        fam.observe(0.5)
        fam.observe(9.0)
        snap = json.loads(json.dumps(reg.snapshot()))
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["c_total"]["series"][0]["value"] == 3.0
        hist = by_name["h_seconds"]["series"][0]
        assert hist["count"] == 2
        assert hist["sum"] == 9.5
        assert hist["buckets"] == [[1.0, 1], [2.0, 1], ["+Inf", 2]]
