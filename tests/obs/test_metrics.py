"""Tests for the metrics registry: families, series, and snapshots."""

import json

import pytest

from repro.obs.metrics import (
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    log2_buckets,
)


class TestBuckets:
    def test_log2_buckets_are_powers_of_two(self):
        assert log2_buckets(-2, 2) == (0.25, 0.5, 1.0, 2.0, 4.0)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            log2_buckets(3, 1)

    def test_duration_buckets_span_us_to_seconds(self):
        assert DURATION_BUCKETS[0] == 2.0 ** -20
        assert DURATION_BUCKETS[-1] == 16.0


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.inc(3)
        g.dec(5)
        assert g.value == 8.0

    def test_histogram_le_semantics(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 3.0, 100.0):
            h.observe(v)
        # le=1 holds 0.5 and the exactly-1.0 observation; 100 -> +Inf.
        assert h.cumulative() == [
            (1.0, 2), (2.0, 2), (4.0, 3), (float("inf"), 4),
        ]
        assert h.count == 4
        assert h.sum == 104.5

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total", "other help ignored")
        assert a is b
        assert len(reg.families()) == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("y_total", labels=("tier",))
        with pytest.raises(ValueError):
            reg.counter("y_total", labels=("stage",))

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad-name")

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("acc_total", labels=("tier",))
        fam.labels(tier="ddr").inc(2)
        fam.labels("cxl").inc(5)
        assert fam.labels("ddr").value == 2.0
        assert fam.labels("cxl").value == 5.0

    def test_labelless_family_proxies_single_series(self):
        reg = MetricsRegistry()
        fam = reg.gauge("depth")
        fam.set(7)
        assert fam.labels().value == 7.0

    def test_wrong_label_arity_rejected(self):
        fam = MetricsRegistry().counter("z_total", labels=("tier",))
        with pytest.raises(ValueError):
            fam.labels()
        with pytest.raises(ValueError):
            fam.labels(stage="x")


class TestDisabledRegistry:
    def test_hands_out_shared_null_metric(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total")
        assert c is NULL_METRIC
        # the whole instrument surface is a no-op
        c.inc()
        c.dec()
        c.set(3)
        c.observe(1.0)
        assert c.labels(tier="ddr") is NULL_METRIC
        assert reg.families() == []

    def test_stores_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("x_total").inc(100)
        assert reg.snapshot() == {"metrics": []}


class TestSnapshot:
    def test_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(3)
        fam = reg.histogram("h_seconds", "a histogram", buckets=(1.0, 2.0))
        fam.observe(0.5)
        fam.observe(9.0)
        snap = json.loads(json.dumps(reg.snapshot()))
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["c_total"]["series"][0]["value"] == 3.0
        hist = by_name["h_seconds"]["series"][0]
        assert hist["count"] == 2
        assert hist["sum"] == 9.5
        assert hist["buckets"] == [[1.0, 1], [2.0, 1], ["+Inf", 2]]
