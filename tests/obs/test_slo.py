"""Tests for the SLO rule engine and watchdog."""

import json

import pytest

from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloRule, SloWatchdog, default_rules, load_rules
from repro.obs.timeseries import TimeSeriesRecorder
from repro.sim import JsonlSink, RingBufferSink, SimConfig, Simulation, TelemetryBus
from repro.workloads import uniform_workload


class TestRuleValidation:
    def test_requires_name_and_series(self):
        with pytest.raises(ValueError):
            SloRule(name="", series="x")
        with pytest.raises(ValueError):
            SloRule(name="x", series="")

    def test_rejects_unknown_reduce_and_op(self):
        with pytest.raises(ValueError):
            SloRule(name="r", series="s", reduce="median")
        with pytest.raises(ValueError):
            SloRule(name="r", series="s", op="!=")

    def test_rejects_non_positive_windows(self):
        with pytest.raises(ValueError):
            SloRule(name="r", series="s", window=0)
        with pytest.raises(ValueError):
            SloRule(name="r", series="s", for_epochs=0)

    def test_breach_direction(self):
        above = SloRule(name="r", series="s", op=">", threshold=1.0)
        assert above.breaches(1.5) and not above.breaches(1.0)
        below = SloRule(name="r", series="s", op="<=", threshold=1.0)
        assert below.breaches(1.0) and not below.breaches(1.5)


class TestLoadRules:
    def test_default_catalogue_scales_with_config(self):
        rules = {r.name: r for r in default_rules(SimConfig())}
        assert rules["queue_saturation"].threshold == pytest.approx(
            0.8 * SimConfig().migration_queue_capacity
        )
        assert set(rules) == {
            "queue_saturation", "epoch_duration_p99",
            "invariant_violations", "bandwidth_starvation",
        }

    def test_default_spec_resolves(self):
        assert {r.name for r in load_rules("default", SimConfig())} == {
            r.name for r in default_rules(SimConfig())
        }

    def test_json_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "hot", "series": "depth", "op": ">=", "threshold": 3.0},
        ]}))
        rules = load_rules(str(path))
        assert rules[0].name == "hot" and rules[0].threshold == 3.0

    def test_json_file_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "hot", "series": "depth", "severity": "page"},
        ]}))
        with pytest.raises(ValueError, match="severity"):
            load_rules(str(path))

    def test_json_file_rejects_empty_rules(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": []}))
        with pytest.raises(ValueError):
            load_rules(str(path))


def make_watchdog(rules, bus=None):
    reg = MetricsRegistry()
    gauge = reg.gauge("depth", "Queue depth")
    rec = TimeSeriesRecorder(reg, series=("depth",), capacity=32)
    return gauge, rec, SloWatchdog(rules, rec, bus=bus)


class TestWatchdog:
    def test_fires_after_sustain_window(self):
        rule = SloRule(name="deep", series="depth", op=">=", threshold=5.0,
                       for_epochs=2)
        gauge, rec, wd = make_watchdog([rule])
        for epoch, value in enumerate([9.0, 9.0, 9.0], start=1):
            gauge.set(value)
            rec.sample(epoch, float(epoch))
            wd.evaluate(epoch, float(epoch))
        # epoch 1 starts the streak, epochs 2 and 3 fire
        assert wd.breaches_total == 2
        assert wd.breaches_by_rule() == {"deep": 2.0}

    def test_streak_resets_on_recovery(self):
        rule = SloRule(name="deep", series="depth", op=">=", threshold=5.0,
                       for_epochs=2)
        gauge, rec, wd = make_watchdog([rule])
        for epoch, value in enumerate([9.0, 1.0, 9.0], start=1):
            gauge.set(value)
            rec.sample(epoch, float(epoch))
            wd.evaluate(epoch, float(epoch))
        assert wd.breaches_total == 0

    def test_absent_series_is_idle_not_breaching(self):
        rule = SloRule(name="ghost", series="never_registered", op=">",
                       threshold=0.0)
        _, rec, wd = make_watchdog([rule])
        rec.sample(1, 1.0)
        assert wd.evaluate(1, 1.0) == 0
        assert wd.breaches_total == 0

    def test_wildcard_judges_worst_matching_series(self):
        reg = MetricsRegistry()
        share = reg.gauge("share", "Granted share", labels=("tenant",))
        rec = TimeSeriesRecorder(reg, series=("share",), capacity=8)
        rule = SloRule(name="starved", series="share*", op="<",
                       threshold=0.05)
        wd = SloWatchdog([rule], rec)
        share.labels(tenant="0").set(0.9)
        share.labels(tenant="1").set(0.01)  # the starved one
        rec.sample(1, 1.0)
        assert wd.evaluate(1, 1.0) == 1

    def test_counter_and_alerts_and_bus(self):
        ring = RingBufferSink()
        bus = TelemetryBus([ring])
        rule = SloRule(name="deep", series="depth", op=">", threshold=0.0)
        gauge, rec, wd = make_watchdog([rule], bus=bus)
        gauge.set(3.0)
        rec.sample(4, 2.5)
        wd.evaluate(4, 2.5)
        snap = rec.registry.snapshot()
        flat = {
            m["name"]: m["series"] for m in snap["metrics"]
        }
        series = flat["slo_breaches_total"]
        assert {"labels": {"rule": "deep"}, "value": 1.0} in series
        assert wd.alerts[0]["rule"] == "deep"
        assert wd.alerts[0]["value"] == 3.0
        events = [e for e in ring.events if e["stage"] == "alert.deep"]
        assert events and events[0]["epoch"] == 4
        assert events[0]["threshold"] == 0.0

    def test_p99_over_p50_reducer(self):
        rule = SloRule(name="tail", series="depth", reduce="p99_over_p50",
                       op=">", threshold=10.0, window=16)
        gauge, rec, wd = make_watchdog([rule])
        for epoch, value in enumerate([1.0] * 9 + [1000.0], start=1):
            gauge.set(value)
            rec.sample(epoch, float(epoch))
        assert wd.evaluate(10, 10.0) == 1


class TestStarvedQueueAcceptance:
    """The acceptance demo: a starved copy engine must raise alerts."""

    def test_queue_saturation_fires_end_to_end(self, tmp_path):
        timeline = str(tmp_path / "timeline.jsonl")
        bus = TelemetryBus([JsonlSink(timeline)])
        obs = Observability(metrics=True, tracing=False)
        config = SimConfig(
            total_accesses=240_000,
            chunk_size=30_000,
            ddr_pages=256,
            cxl_pages=4096,
            pages_per_gb=1024,
            migration_mode="async",
            migration_copy_gbps=0.0001,  # starved copy engine
            migration_queue_capacity=64,
            slo_rules="default",
        )
        sim = Simulation(
            uniform_workload(footprint_pages=1024, seed=0),
            config,
            policy="m5-hpt",
            telemetry=bus,
            obs=obs,
        )
        result = sim.run()
        bus.close()
        assert sim.watchdog is not None
        assert sim.watchdog.breaches_by_rule()["queue_saturation"] > 0
        assert result.extra["slo_breaches"] > 0
        flat = {
            m["name"]: m["series"]
            for m in obs.registry.snapshot()["metrics"]
        }
        fired = [
            s for s in flat["slo_breaches_total"]
            if s["labels"]["rule"] == "queue_saturation"
        ]
        assert fired and fired[0]["value"] > 0
        alerts = [
            json.loads(line)
            for line in open(timeline)
            if '"alert.queue_saturation"' in line
        ]
        assert alerts
        assert all(e["value"] >= e["threshold"] for e in alerts)
