"""Tests for the per-epoch time-series recorder."""

import json
import math

import numpy as np
import pytest

from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    BASE_COLUMNS,
    DEFAULT_RECORD_SERIES,
    TimeSeriesRecorder,
    parse_series_spec,
)
from repro.sim import SimConfig, Simulation
from repro.workloads import uniform_workload


class TestParseSeriesSpec:
    def test_default_expands(self):
        assert parse_series_spec("default") == DEFAULT_RECORD_SERIES

    def test_all_is_wildcard(self):
        assert parse_series_spec("all") == ("*",)
        assert parse_series_spec("*") == ("*",)

    def test_explicit_list_deduplicates(self):
        assert parse_series_spec("a, b,a") == ("a", "b")

    def test_default_expands_inside_a_list(self):
        names = parse_series_spec("my_metric,default")
        assert names[0] == "my_metric"
        assert set(DEFAULT_RECORD_SERIES) <= set(names)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            parse_series_spec(" , ")


def make_registry():
    reg = MetricsRegistry()
    reg.counter("reqs_total", "Requests").inc(0)
    reg.gauge("depth", "Queue depth").set(0)
    return reg


class TestRecorder:
    def test_samples_selected_families(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("reqs_total",), capacity=8)
        rec.sample(1, 0.5)
        assert rec.rows == 1
        assert set(rec.columns()) == {"reqs_total", "epoch", "t_s"}
        assert rec.last("reqs_total") == 0.0

    def test_wildcard_samples_everything(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("*",), capacity=8)
        rec.sample(1, 0.5)
        assert {"reqs_total", "depth"} <= set(rec.columns())

    def test_late_series_backfills_nan(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("*",), capacity=8)
        rec.sample(1, 1.0)
        reg.counter("late_total", "Appears at epoch 2").inc(7)
        rec.sample(2, 2.0)
        values = rec.column("late_total")
        assert math.isnan(values[0]) and values[1] == 7.0
        assert rec.last("late_total") == 7.0

    def test_ring_wrap_counts_dropped(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("reqs_total",), capacity=3)
        for epoch in range(5):
            rec.sample(epoch, float(epoch))
        assert rec.rows == 3
        assert rec.dropped == 2
        assert rec.samples_total == 5
        assert list(rec.column("epoch")) == [2.0, 3.0, 4.0]

    def test_memory_is_bounded(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("reqs_total",), capacity=100)
        for epoch in range(500):
            rec.sample(epoch, float(epoch))
        # 3 columns (reqs_total, epoch, t_s) x 100 rows x 8 bytes
        assert rec.memory_bytes == 3 * 100 * 8

    def test_rate_is_first_difference_over_sim_time(self):
        reg = make_registry()
        counter = reg.get("reqs_total")
        rec = TimeSeriesRecorder(reg, series=("reqs_total",), capacity=8)
        for epoch in range(4):
            counter.inc(10)
            rec.sample(epoch, float(epoch))
        # 30 units between t=0 and t=3
        assert rec.rate("reqs_total") == pytest.approx(10.0)

    def test_rate_with_single_point_is_zero(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("reqs_total",), capacity=8)
        rec.sample(1, 1.0)
        assert rec.rate("reqs_total") == 0.0

    def test_quantile_over_window(self):
        reg = make_registry()
        gauge = reg.get("depth")
        rec = TimeSeriesRecorder(reg, series=("depth",), capacity=16)
        for epoch, value in enumerate([1.0, 2.0, 3.0, 100.0]):
            gauge.set(value)
            rec.sample(epoch, float(epoch))
        assert rec.quantile("depth", 1.0) == 100.0
        assert rec.quantile("depth", 0.5, window=3) == 3.0

    def test_unknown_column_raises(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("reqs_total",), capacity=8)
        rec.sample(1, 1.0)
        with pytest.raises(KeyError):
            rec.column("misspelled_total")

    def test_window_returns_last_n_rows(self):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("reqs_total",), capacity=8)
        for epoch in range(5):
            rec.sample(epoch, float(epoch))
        tail = rec.window(2)
        assert list(tail["epoch"]) == [3.0, 4.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(make_registry(), capacity=0)

    def test_histograms_contribute_sum_and_count(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", "Latency", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)
        rec = TimeSeriesRecorder(reg, series=("lat_seconds",), capacity=4)
        rec.sample(1, 1.0)
        assert rec.last("lat_seconds_sum") == 2.5
        assert rec.last("lat_seconds_count") == 2.0


class TestExport:
    def test_jsonl_round_trip_with_nulls(self, tmp_path):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("*",), capacity=8)
        rec.sample(1, 1.0)
        reg.counter("late_total", "").inc(3)
        rec.sample(2, 2.0)
        path = str(tmp_path / "series.jsonl")
        assert rec.to_jsonl(path) == 2
        rows = [json.loads(line) for line in open(path)]
        assert rows[0]["late_total"] is None
        assert rows[1]["late_total"] == 3.0
        assert all(set(BASE_COLUMNS[:2]) <= set(row) for row in rows)

    def test_csv_header_and_empty_cells(self, tmp_path):
        reg = make_registry()
        rec = TimeSeriesRecorder(reg, series=("*",), capacity=8)
        rec.sample(1, 1.0)
        reg.counter("late_total", "").inc(3)
        rec.sample(2, 2.0)
        path = str(tmp_path / "series.csv")
        assert rec.to_csv(path) == 2
        lines = open(path).read().splitlines()
        header = [c.strip('"') for c in lines[0].split(",")]
        idx = header.index("late_total")
        assert lines[1].split(",")[idx] == ""
        assert lines[2].split(",")[idx] == "3.0"


def run_sim(**cfg):
    defaults = dict(
        total_accesses=120_000,
        chunk_size=30_000,
        ddr_pages=512,
        cxl_pages=4096,
        pages_per_gb=1024,
    )
    defaults.update(cfg)
    obs = Observability(metrics=True, tracing=False)
    sim = Simulation(
        uniform_workload(footprint_pages=1024, seed=0),
        SimConfig(**defaults),
        policy="m5-hpt",
        obs=obs,
    )
    return sim, sim.run()


class TestEngineIntegration:
    def test_record_stage_samples_every_epoch(self):
        sim, result = run_sim(record_series="default")
        assert sim.recorder is not None
        assert sim.recorder.rows == 4  # 120k accesses / 30k chunk
        assert result.extra["recorded_epochs"] == 4.0
        assert "epoch_s" in sim.recorder.columns()

    def test_recording_does_not_perturb_the_run(self):
        _, plain = run_sim()
        _, recorded = run_sim(record_series="default")
        assert recorded.execution_time_s == plain.execution_time_s
        assert recorded.promoted == plain.promoted
        assert recorded.demoted == plain.demoted

    def test_no_recorder_without_spec(self):
        sim, _ = run_sim()
        assert sim.recorder is None
        assert "record" not in sim._stage_names

    def test_ring_capacity_honoured(self):
        sim, _ = run_sim(record_series="default", record_epochs=2)
        assert sim.recorder.rows == 2
        assert sim.recorder.dropped == 2
