"""Tests for the exporters: Prometheus text, flatten/diff, Chrome trace."""

import json

from repro.obs import Observability
from repro.obs.exporters import (
    chrome_trace,
    diff_snapshots,
    flatten_snapshot,
    load_metrics_file,
    merged_chrome_trace,
    parse_prometheus,
    to_prometheus,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("sim_epochs_total", "Epochs executed").inc(13)
    acc = reg.counter("sim_accesses_total", "Accesses by tier",
                      labels=("tier",))
    acc.labels(tier="ddr").inc(100)
    acc.labels(tier="cxl").inc(50)
    hist = reg.histogram("stage_seconds", "Stage wall-clock",
                         buckets=(0.5, 1.0))
    hist.observe(0.25)
    hist.observe(2.0)
    return reg


class TestPrometheus:
    def test_golden_exposition(self):
        text = to_prometheus(sample_registry().snapshot())
        assert text == (
            "# HELP sim_epochs_total Epochs executed\n"
            "# TYPE sim_epochs_total counter\n"
            "sim_epochs_total 13\n"
            "# HELP sim_accesses_total Accesses by tier\n"
            "# TYPE sim_accesses_total counter\n"
            'sim_accesses_total{tier="ddr"} 100\n'
            'sim_accesses_total{tier="cxl"} 50\n'
            "# HELP stage_seconds Stage wall-clock\n"
            "# TYPE stage_seconds histogram\n"
            'stage_seconds_bucket{le="0.5"} 1\n'
            'stage_seconds_bucket{le="1"} 1\n'
            'stage_seconds_bucket{le="+Inf"} 2\n'
            "stage_seconds_sum 2.25\n"
            "stage_seconds_count 2\n"
        )

    def test_parse_round_trip(self):
        text = to_prometheus(sample_registry().snapshot())
        flat = parse_prometheus(text)
        assert flat["sim_epochs_total"] == 13.0
        assert flat['sim_accesses_total{tier="ddr"}'] == 100.0
        assert flat["stage_seconds_sum"] == 2.25

    def test_non_integral_values_keep_precision(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(0.123456789)
        assert "g 0.123456789" in to_prometheus(reg.snapshot())


def labelled_histogram_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    lat = reg.histogram("stage_seconds", "Stage wall-clock by tenant",
                        labels=("tenant", "stage"), buckets=(0.5, 1.0))
    lat.labels(tenant="0", stage="perf").observe(0.25)
    lat.labels(tenant="0", stage="perf").observe(2.0)
    lat.labels(tenant="1", stage="migrate").observe(0.75)
    reg.counter("acc_total", labels=("tenant",)).labels(tenant="1").inc(3)
    return reg


class TestLabelledHistogramRoundTrip:
    """Exporter chain must be lossless for labelled histograms: a
    scrape parsed back must equal the bucket-level flatten of the
    snapshot key-for-key."""

    def test_parse_of_exposition_equals_bucket_flatten(self):
        snap = labelled_histogram_registry().snapshot()
        parsed = parse_prometheus(to_prometheus(snap))
        assert parsed == flatten_snapshot(snap, buckets=True)

    def test_bucket_keys_carry_series_labels_and_le(self):
        snap = labelled_histogram_registry().snapshot()
        flat = flatten_snapshot(snap, buckets=True)
        key = 'stage_seconds_bucket{tenant="0",stage="perf",le="+Inf"}'
        assert flat[key] == 2.0
        assert flat['stage_seconds_sum{tenant="1",stage="migrate"}'] == 0.75
        assert flat['stage_seconds_count{tenant="1",stage="migrate"}'] == 1.0

    def test_round_trip_survives_merge_widening(self):
        # widened families pad labels with ""; the exposition must
        # still parse back to the identical flat map
        reg = MetricsRegistry()
        reg.counter("slo_breaches_total", labels=("rule",)).labels(
            rule="deep"
        ).inc(2)
        reg.merge(labelled_histogram_registry().snapshot())
        snap = reg.snapshot()
        assert parse_prometheus(to_prometheus(snap)) == flatten_snapshot(
            snap, buckets=True
        )


class TestFlattenDiff:
    def test_flatten_matches_parsed_exposition(self):
        snap = sample_registry().snapshot()
        flat = flatten_snapshot(snap)
        parsed = parse_prometheus(to_prometheus(snap))
        # flatten elides buckets; everything else must agree
        assert flat == {k: v for k, v in parsed.items()
                        if "_bucket{" not in k}

    def test_diff_unions_and_subtracts(self):
        rows = diff_snapshots({"a": 1.0, "b": 2.0}, {"b": 5.0, "c": 1.0})
        assert rows == [
            {"series": "a", "a": 1.0, "b": 0.0, "delta": -1.0},
            {"series": "b", "a": 2.0, "b": 5.0, "delta": 3.0},
            {"series": "c", "a": 0.0, "b": 1.0, "delta": 1.0},
        ]

    def test_load_metrics_file_both_formats(self, tmp_path):
        snap = sample_registry().snapshot()
        json_path = tmp_path / "m.json"
        json_path.write_text(json.dumps(snap))
        prom_path = tmp_path / "m.prom"
        prom_path.write_text(to_prometheus(snap))
        from_json = load_metrics_file(str(json_path))
        from_prom = load_metrics_file(str(prom_path))
        assert from_json["sim_epochs_total"] == 13.0
        assert from_prom["sim_epochs_total"] == 13.0


class TestChromeTrace:
    def traced(self):
        tracer = Tracer()
        tracer.current_epoch = 3
        clock = {"now": 1.0}
        tracer.sim_clock = lambda: clock["now"]
        with tracer.span("run"), tracer.span("stage.perf", note=7):
            clock["now"] = 2.0
        return tracer

    def test_event_shape(self):
        trace = chrome_trace(self.traced().spans)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        # sorted by start: run opened first
        assert [e["name"] for e in events] == ["run", "stage.perf"]
        perf = events[1]
        assert perf["ph"] == "X"
        assert perf["cat"] == "pipeline"
        assert perf["pid"] == 1 and perf["tid"] == 1
        assert perf["dur"] >= 0.0
        assert perf["args"]["epoch"] == 3
        assert perf["args"]["sim_start_s"] == 1.0
        assert perf["args"]["sim_dur_s"] == 1.0
        assert perf["args"]["note"] == 7

    def test_write_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(str(path), self.traced().spans)
        assert n == 2
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == 2

    def test_merged_trace_one_pid_per_group(self):
        groups = [(0, self.traced().spans), (1, self.traced().spans)]
        trace = merged_chrome_trace(groups)
        assert len(trace["traceEvents"]) == 4
        assert {e["pid"] for e in trace["traceEvents"]} == {0, 1}
        assert trace["displayTimeUnit"] == "ms"


class TestObservabilityFacade:
    def test_snapshot_prometheus_and_trace(self):
        obs = Observability()
        obs.registry.counter("x_total").inc(4)
        with obs.tracer.span("run"):
            pass
        assert "x_total 4" in obs.prometheus()
        assert obs.flame_table()[0]["name"] == "run"
        assert len(obs.chrome_trace()["traceEvents"]) == 1

    def test_null_obs_is_fully_disabled(self):
        from repro.obs import NULL_OBS

        assert not NULL_OBS.enabled
        assert not NULL_OBS.metrics_on
        assert not NULL_OBS.tracing_on
        assert NULL_OBS.snapshot() == {"metrics": []}
