"""Tests for the in-process HTTP metrics exporter."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import Observability
from repro.obs.exporters import parse_prometheus, to_prometheus
from repro.obs.live import ObsServer
from repro.obs.metrics import MetricsRegistry
from repro.sim import JsonlSink, SimConfig, Simulation, TelemetryBus
from repro.workloads import uniform_workload


def make_registry():
    reg = MetricsRegistry()
    reg.counter("reqs_total", "Requests", labels=("code",)).labels(
        code="200"
    ).inc(7)
    reg.gauge("depth", "Queue depth").set(3.5)
    hist = reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(5.0)
    return reg


def get(url):
    return urllib.request.urlopen(url, timeout=5).read()


class TestEndpoints:
    def test_metrics_endpoint_matches_exporter(self):
        reg = make_registry()
        with ObsServer(reg) as server:
            body = get(server.url + "/metrics").decode()
        assert body == to_prometheus(reg.snapshot())
        flat = parse_prometheus(body)
        assert flat['reqs_total{code="200"}'] == 7.0
        assert flat["depth"] == 3.5

    def test_snapshot_endpoint_equals_registry_snapshot(self):
        reg = make_registry()
        with ObsServer(reg) as server:
            snap = json.loads(get(server.url + "/snapshot.json"))
        assert snap == reg.snapshot()

    def test_healthz_counts_scrapes_out_of_band(self):
        reg = make_registry()
        with ObsServer(reg) as server:
            get(server.url + "/metrics")
            get(server.url + "/metrics")
            health = json.loads(get(server.url + "/healthz"))
            # a scraped server must not perturb the run's registry
            assert reg.snapshot() == make_registry().snapshot()
        assert health["status"] == "ok"
        assert health["scrapes"]["/metrics"] == 2

    def test_unknown_path_is_404(self):
        with ObsServer(make_registry()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server.url + "/nope")
        assert err.value.code == 404

    def test_callable_source(self):
        calls = []

        def source():
            calls.append(1)
            return {"metrics": [], "fresh": len(calls)}

        with ObsServer(source) as server:
            first = json.loads(get(server.url + "/snapshot.json"))
            second = json.loads(get(server.url + "/snapshot.json"))
        assert first["fresh"] == 1 and second["fresh"] == 2

    def test_snapshot_retries_registration_races(self):
        attempts = []

        def racy():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("dictionary changed size during iteration")
            return {"metrics": []}

        server = ObsServer(racy, snapshot_tries=8)
        assert server.snapshot() == {"metrics": []}
        assert len(attempts) == 3

    def test_failing_source_returns_500(self):
        def broken():
            raise ValueError("boom")

        with ObsServer(broken) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server.url + "/metrics")
        assert err.value.code == 500


class TestScraperDisconnect:
    """Regression: a scraper hanging up mid-response killed the
    handler thread with an unhandled ``BrokenPipeError``/
    ``ConnectionResetError`` traceback.  A client disconnect is normal
    churn for a long-running service — the server must swallow it,
    count it, and keep serving."""

    @staticmethod
    def big_source():
        # A multi-megabyte exposition guarantees the response cannot
        # fit in the kernel socket buffers, so the handler is still
        # mid-write when the scraper's reset lands.
        reg = MetricsRegistry()
        fam = reg.counter("wide_total", "Many series", labels=("k",))
        for i in range(4000):
            fam.labels(k=f"series-{i:04d}-" + "x" * 500).inc(i)
        return reg

    @staticmethod
    def abort_scrape(host, port, path="/metrics"):
        """Start a scrape, then slam the connection shut (RST)."""
        import socket
        import struct

        sock = socket.create_connection((host, port), timeout=5)
        try:
            # Tiny receive window + linger-0 close: the server blocks
            # writing the body, then gets a hard reset.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.sendall(
                f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
        finally:
            sock.close()

    def wait_for(self, predicate, timeout_s=10.0):
        import time

        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.02)
        return predicate()

    def test_server_survives_early_disconnect(self):
        with ObsServer(self.big_source()) as server:
            self.abort_scrape(server.host, server.port)
            assert self.wait_for(lambda: server.disconnects >= 1), \
                "handler never registered the scraper disconnect"
            # The server must still answer the next scraper.
            health = json.loads(get(server.url + "/healthz"))
            assert server.running
        assert health["status"] == "ok"
        assert health["disconnects"] >= 1

    def test_disconnects_survive_repeated_abuse(self):
        with ObsServer(self.big_source()) as server:
            for _ in range(3):
                self.abort_scrape(server.host, server.port)
            assert self.wait_for(lambda: server.disconnects >= 3)
            body = get(server.url + "/metrics")
            assert b"wide_total" in body
            assert server.running


class TestLifecycle:
    def test_ephemeral_port_is_published(self):
        server = ObsServer(make_registry())
        try:
            server.start()
            assert server.port > 0
            assert str(server.port) in server.url
            assert server.running
        finally:
            server.close()
        assert not server.running

    def test_close_is_idempotent_and_safe_unstarted(self):
        server = ObsServer(make_registry())
        server.close()  # never started
        server.start()
        server.close()
        server.close()  # double close
        assert not server.running

    def test_port_is_released_on_close(self):
        first = ObsServer(make_registry())
        first.start()
        port = first.port
        first.close()
        second = ObsServer(make_registry(), port=port)
        with second:
            assert second.port == port

    def test_context_manager_closes_on_exception(self):
        server = ObsServer(make_registry())
        with pytest.raises(RuntimeError):
            with server:
                assert server.running
                raise RuntimeError("mid-run failure")
        assert not server.running


class TestLiveRun:
    """The server scraped concurrently with a real simulation."""

    def run_config(self):
        return SimConfig(
            total_accesses=120_000,
            chunk_size=30_000,
            ddr_pages=512,
            cxl_pages=4096,
            pages_per_gb=1024,
        )

    def test_final_scrape_equals_end_of_run_snapshot(self):
        obs = Observability(metrics=True, tracing=False)
        sim = Simulation(
            uniform_workload(footprint_pages=1024, seed=0),
            self.run_config(),
            policy="m5-hpt",
            obs=obs,
        )
        with ObsServer(obs.registry) as server:
            sim.run()
            scraped = json.loads(get(server.url + "/snapshot.json"))
            text = get(server.url + "/metrics").decode()
        assert scraped == obs.snapshot()
        assert parse_prometheus(text) == parse_prometheus(
            to_prometheus(obs.snapshot())
        )

    def test_serving_does_not_perturb_the_run(self):
        def run(with_server):
            obs = Observability(metrics=True, tracing=False)
            sim = Simulation(
                uniform_workload(footprint_pages=1024, seed=0),
                self.run_config(),
                policy="m5-hpt",
                obs=obs,
            )
            if with_server:
                with ObsServer(obs.registry):
                    return sim.run()
            return sim.run()

        plain, served = run(False), run(True)
        assert served.execution_time_s == plain.execution_time_s
        assert served.promoted == plain.promoted
        assert served.demoted == plain.demoted

    def test_shutdown_ordering_on_mid_run_exception(self, tmp_path):
        """Server must close and the bus must flush even when the
        surrounded run raises — the regression the ExitStack LIFO
        ordering in the CLI exists to prevent."""
        timeline = str(tmp_path / "timeline.jsonl")
        sink = JsonlSink(timeline)
        bus = TelemetryBus([sink])
        server = ObsServer(make_registry())
        with pytest.raises(RuntimeError):
            with bus:
                with server:
                    bus.publish("epoch.end", 1, 0.5, depth=2.0)
                    assert server.running
                    raise RuntimeError("simulated engine crash")
        assert not server.running
        assert sink._fh is None  # sink closed → events flushed to disk
        events = [json.loads(ln) for ln in open(timeline) if ln.strip()]
        assert events and events[0]["stage"] == "epoch.end"
