"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for bench in ("mcf", "redis", "pr", "cachelib"):
            assert bench in out


class TestRun:
    def test_run_policy(self, capsys):
        rc = main([
            "run", "--bench", "mcf", "--policy", "m5-hpt",
            "--accesses", "100000", "--chunk", "50000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "m5-hpt" in out
        assert "promoted" in out

    def test_identification_mode_reports_ratio(self, capsys):
        rc = main([
            "run", "--bench", "mcf", "--policy", "anb", "--no-migrate",
            "--accesses", "100000", "--chunk", "50000",
        ])
        assert rc == 0
        assert "access-count ratio" in capsys.readouterr().out

    def test_redis_reports_p99(self, capsys):
        rc = main([
            "run", "--bench", "redis", "--policy", "none",
            "--accesses", "100000", "--chunk", "50000",
        ])
        assert rc == 0
        assert "p99" in capsys.readouterr().out


class TestRunObservability:
    def test_metrics_prom_file(self, capsys, tmp_path):
        path = tmp_path / "run.prom"
        rc = main([
            "run", "--bench", "mcf", "--policy", "m5-hpt",
            "--accesses", "100000", "--chunk", "50000",
            "--metrics", str(path),
        ])
        assert rc == 0
        assert "metrics snapshot written" in capsys.readouterr().out
        text = path.read_text()
        assert "# TYPE sim_epochs_total counter" in text
        assert "sim_epochs_total 2" in text

    def test_metrics_json_file(self, tmp_path):
        import json

        path = tmp_path / "run.json"
        rc = main([
            "run", "--bench", "mcf", "--policy", "m5-hpt",
            "--accesses", "100000", "--chunk", "50000",
            "--metrics", str(path),
        ])
        assert rc == 0
        snap = json.loads(path.read_text())
        assert any(m["name"] == "sim_epochs_total" for m in snap["metrics"])

    def test_trace_file_and_flame_table(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        rc = main([
            "run", "--bench", "mcf", "--policy", "m5-hpt",
            "--accesses", "100000", "--chunk", "50000",
            "--trace", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flame table" in out
        assert "stage coverage" in out
        trace = json.loads(path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "run" in names and "stage.perf" in names


class TestMetricsCommand:
    def snapshot_file(self, tmp_path, name, epochs):
        from repro.obs import Observability, to_prometheus

        obs = Observability(metrics=True, tracing=False)
        obs.registry.counter("sim_epochs_total").inc(epochs)
        path = tmp_path / name
        path.write_text(to_prometheus(obs.snapshot()))
        return str(path)

    def test_show_one_snapshot(self, capsys, tmp_path):
        path = self.snapshot_file(tmp_path, "a.prom", 5)
        assert main(["metrics", path]) == 0
        out = capsys.readouterr().out
        assert "sim_epochs_total" in out and "5.000" in out

    def test_diff_two_snapshots(self, capsys, tmp_path):
        a = self.snapshot_file(tmp_path, "a.prom", 5)
        b = self.snapshot_file(tmp_path, "b.prom", 8)
        assert main(["metrics", a, b]) == 0
        out = capsys.readouterr().out
        assert "metrics diff" in out and "3.000" in out

    def test_identical_snapshots_report_no_change(self, capsys, tmp_path):
        a = self.snapshot_file(tmp_path, "a.prom", 5)
        b = self.snapshot_file(tmp_path, "b.prom", 5)
        assert main(["metrics", a, b]) == 0
        assert "no differing series" in capsys.readouterr().out

    def test_missing_file_rejected(self, capsys, tmp_path):
        rc = main(["metrics", str(tmp_path / "nope.prom")])
        assert rc == 2

    def test_three_files_rejected(self, capsys, tmp_path):
        a = self.snapshot_file(tmp_path, "a.prom", 1)
        assert main(["metrics", a, a, a]) == 2


class TestSweepMetrics:
    def test_per_cell_snapshots_collected(self, capsys, tmp_path):
        import json

        path = tmp_path / "cells.json"
        rc = main([
            "sweep", "--benches", "mcf", "--policies", "m5-hpt",
            "--accesses", "100000", "--chunk", "50000",
            "--metrics", str(path),
        ])
        assert rc == 0
        assert "per-cell metrics written" in capsys.readouterr().out
        cells = json.loads(path.read_text())
        assert set(cells["mcf"]) == {"none", "m5-hpt"}
        names = {m["name"] for m in cells["mcf"]["m5-hpt"]["metrics"]}
        assert "sim_epochs_total" in names


class TestCompare:
    def test_compare_policies(self, capsys):
        rc = main([
            "compare", "--bench", "mcf", "--policies", "anb,m5-hpt",
            "--accesses", "100000", "--chunk", "50000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "anb" in out and "m5-hpt" in out and "norm" in out

    def test_unknown_policy_rejected(self, capsys):
        rc = main([
            "compare", "--bench", "mcf", "--policies", "tpp2",
            "--accesses", "100000",
        ])
        assert rc == 2


class TestProfile:
    def test_profile_output(self, capsys):
        rc = main([
            "profile", "--bench", "redis",
            "--accesses", "200000", "--chunk", "50000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P(<=  4 words)" in out
        assert "page character : sparse" in out


class TestHwcost:
    def test_table_printed(self, capsys):
        assert main(["hwcost"]) == 0
        out = capsys.readouterr().out
        assert "33.6x area" in out


class TestRunCheckpointResume:
    def test_checkpoint_then_resume_reproduces_summary(
        self, capsys, tmp_path
    ):
        ckpt = tmp_path / "run.ckpt"
        rc = main([
            "run", "--bench", "mcf", "--policy", "m5-hpt",
            "--accesses", "200000", "--chunk", "20000",
            "--checkpoint", str(ckpt), "--checkpoint-every", "3",
        ])
        assert rc == 0
        full = capsys.readouterr().out
        assert "checkpoints   : 3 written" in full
        assert ckpt.exists()

        rc = main(["run", "--resume", str(ckpt)])
        assert rc == 0
        resumed = capsys.readouterr().out
        assert "resuming from" in resumed
        # The resumed tail lands on the uninterrupted run's summary,
        # line for line.
        for key in ("execution time", "promoted", "DDR/CXL pages"):
            (line,) = [l for l in full.splitlines() if l.startswith(key)]
            assert line in resumed

    def test_resume_missing_file_errors(self, capsys, tmp_path):
        assert main(["run", "--resume", str(tmp_path / "no.ckpt")]) == 2
        assert "cannot resume" in capsys.readouterr().out


class TestServeCommand:
    @staticmethod
    def make_traces(tmp_path):
        from repro.workloads import record, uniform_workload

        p1 = record(uniform_workload(footprint_pages=2048, seed=41),
                    8 * 4096, tmp_path / "a.rtrace", chunk_size=4096)
        p2 = record(uniform_workload(footprint_pages=2048, seed=42),
                    6 * 4096, tmp_path / "b.rtrace", chunk_size=4096)
        return p1, p2

    def serve(self, *argv):
        return main(["serve", "--chunk", "4096", "--no-http", *argv])

    def test_serve_two_streams_to_completion(self, capsys, tmp_path):
        import json

        p1, p2 = self.make_traces(tmp_path)
        out = tmp_path / "serve.json"
        rc = self.serve(
            "--stream", f"a={p1}",
            "--stream", f"b={p2},policy=anb,budget=8192",
            "--out", str(out),
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "rounds" in text
        payload = json.loads(out.read_text())
        assert payload["unfinished"] == []
        assert set(payload["streams"]) == {"a", "b"}
        assert payload["streams"]["b"]["policy"] == "anb"

    def test_serve_kill_resume_matches_uninterrupted(self, capsys, tmp_path):
        import json

        p1, p2 = self.make_traces(tmp_path)
        streams = [
            "--stream", f"a={p1},budget=8192",
            "--stream", f"b={p2},budget=4096",
        ]
        base_out = tmp_path / "base.json"
        assert self.serve(*streams, "--out", str(base_out)) == 0

        ckpt_dir = tmp_path / "ckpt"
        part_out = tmp_path / "part.json"
        rc = self.serve(
            *streams, "--checkpoint-dir", str(ckpt_dir),
            "--checkpoint-every", "1", "--max-rounds", "2",
            "--out", str(part_out),
        )
        assert rc == 0
        assert json.loads(part_out.read_text())["streams"] == {}

        res_out = tmp_path / "res.json"
        rc = main(["serve", "--no-http", "--resume", str(ckpt_dir),
                   "--max-rounds", "0", "--out", str(res_out)])
        assert rc == 0
        capsys.readouterr()
        base = json.loads(base_out.read_text())
        res = json.loads(res_out.read_text())
        assert res["unfinished"] == []
        assert res["streams"] == base["streams"]

    def test_serve_requires_streams(self, capsys):
        assert main(["serve", "--no-http"]) == 2
        assert "--stream" in capsys.readouterr().out

    def test_serve_rejects_bad_stream_spec(self, capsys, tmp_path):
        assert self.serve("--stream", "just-a-name") == 2
        assert "NAME=TRACE" in capsys.readouterr().out
        assert self.serve("--stream", "a=t.rtrace,policy=bogus") == 2
        assert "unknown policy" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_run_requires_bench(self, capsys):
        # --bench became optional at parse time (a --resume run takes
        # everything from the checkpoint), so the check is a runtime
        # error with the CLI's usual exit code.
        assert main(["run"]) == 2
        assert "--bench is required" in capsys.readouterr().out
