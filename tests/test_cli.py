"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for bench in ("mcf", "redis", "pr", "cachelib"):
            assert bench in out


class TestRun:
    def test_run_policy(self, capsys):
        rc = main([
            "run", "--bench", "mcf", "--policy", "m5-hpt",
            "--accesses", "100000", "--chunk", "50000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "m5-hpt" in out
        assert "promoted" in out

    def test_identification_mode_reports_ratio(self, capsys):
        rc = main([
            "run", "--bench", "mcf", "--policy", "anb", "--no-migrate",
            "--accesses", "100000", "--chunk", "50000",
        ])
        assert rc == 0
        assert "access-count ratio" in capsys.readouterr().out

    def test_redis_reports_p99(self, capsys):
        rc = main([
            "run", "--bench", "redis", "--policy", "none",
            "--accesses", "100000", "--chunk", "50000",
        ])
        assert rc == 0
        assert "p99" in capsys.readouterr().out


class TestCompare:
    def test_compare_policies(self, capsys):
        rc = main([
            "compare", "--bench", "mcf", "--policies", "anb,m5-hpt",
            "--accesses", "100000", "--chunk", "50000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "anb" in out and "m5-hpt" in out and "norm" in out

    def test_unknown_policy_rejected(self, capsys):
        rc = main([
            "compare", "--bench", "mcf", "--policies", "tpp2",
            "--accesses", "100000",
        ])
        assert rc == 2


class TestProfile:
    def test_profile_output(self, capsys):
        rc = main([
            "profile", "--bench", "redis",
            "--accesses", "200000", "--chunk", "50000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P(<=  4 words)" in out
        assert "page character : sparse" in out


class TestHwcost:
    def test_table_printed(self, capsys):
        assert main(["hwcost"]) == 0
        out = capsys.readouterr().out
        assert "33.6x area" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_run_requires_bench(self):
        with pytest.raises(SystemExit):
            main(["run"])
