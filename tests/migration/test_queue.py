"""Tests for the bounded, deduplicating migration queue."""

import pytest

from repro.migration import Direction, MigrationQueue


class TestBounds:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MigrationQueue(capacity=0)

    def test_push_until_full_then_drop(self):
        q = MigrationQueue(capacity=2)
        assert q.push(0, Direction.PROMOTE)
        assert q.push(1, Direction.PROMOTE)
        assert not q.push(2, Direction.PROMOTE)
        assert len(q) == 2
        assert q.dropped_full == 1
        assert q.free_slots == 0

    def test_push_many_counts_accepted(self):
        q = MigrationQueue(capacity=3)
        assert q.push_many([0, 1, 2, 3, 4], Direction.PROMOTE) == 3
        assert q.dropped_full == 2


class TestDedupe:
    def test_duplicate_page_is_noop(self):
        q = MigrationQueue()
        assert q.push(7, Direction.PROMOTE)
        assert not q.push(7, Direction.PROMOTE)
        assert not q.push(7, Direction.DEMOTE)
        assert len(q) == 1
        assert q.duplicates == 2

    def test_contains_tracks_queued_pages(self):
        q = MigrationQueue()
        q.push(7, Direction.PROMOTE)
        assert 7 in q
        assert 8 not in q

    def test_release_makes_page_nominatable_again(self):
        q = MigrationQueue()
        q.push(7, Direction.PROMOTE)
        (req,) = q.take(epoch=0)
        assert 7 in q  # reservation held while in flight
        q.release(req.lpage)
        assert 7 not in q
        assert q.push(7, Direction.PROMOTE)

    def test_take_keeps_reservation_until_settled(self):
        q = MigrationQueue()
        q.push(7, Direction.PROMOTE)
        q.take(epoch=0)
        assert not q.push(7, Direction.PROMOTE)
        assert q.duplicates == 1


class TestOrderingAndBackoff:
    def test_fifo_order(self):
        q = MigrationQueue()
        q.push_many([3, 1, 2], Direction.PROMOTE)
        assert [r.lpage for r in q.take(epoch=0)] == [3, 1, 2]

    def test_take_respects_limit(self):
        q = MigrationQueue()
        q.push_many([0, 1, 2], Direction.PROMOTE)
        assert len(q.take(epoch=0, limit=2)) == 2
        assert len(q) == 1

    def test_backoff_gated_requests_skipped(self):
        q = MigrationQueue()
        q.push(0, Direction.PROMOTE)
        (req,) = q.take(epoch=0)
        q.requeue(req, not_before_epoch=5)
        assert q.take(epoch=4) == []
        assert len(q) == 1
        taken = q.take(epoch=5)
        assert [r.lpage for r in taken] == [0]

    def test_gated_requests_keep_queue_order(self):
        q = MigrationQueue()
        q.push(0, Direction.PROMOTE)
        (gated,) = q.take(epoch=0)
        q.requeue(gated, not_before_epoch=10)
        q.push_many([1, 2], Direction.PROMOTE)
        # Epoch 1: gated request skipped, eligible ones flow FIFO.
        assert [r.lpage for r in q.take(epoch=1)] == [1, 2]
        # The gated request kept its place at the front.
        assert [r.lpage for r in q.take(epoch=10)] == [0]

    def test_unget_returns_to_front(self):
        q = MigrationQueue()
        q.push_many([0, 1, 2], Direction.PROMOTE)
        first, second = q.take(epoch=0, limit=2)
        q.unget(second)
        q.unget(first)
        assert [r.lpage for r in q.take(epoch=0)] == [0, 1, 2]

    def test_requeue_increments_nothing_itself(self):
        q = MigrationQueue()
        q.push(0, Direction.PROMOTE)
        (req,) = q.take(epoch=0)
        req.retries = 2
        q.requeue(req, not_before_epoch=3)
        (again,) = q.take(epoch=3)
        assert again.retries == 2
        assert again.not_before_epoch == 3
