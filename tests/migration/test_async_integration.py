"""End-to-end tests of the async migration subsystem inside Simulation."""

import pytest

from repro.analysis.timeline import migration_outcome_totals, migration_outcomes
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation, run_policy
from repro.sim.telemetry import RingBufferSink, TelemetryBus
from repro.workloads import build, uniform_workload


def async_config(**kw):
    defaults = dict(
        total_accesses=120_000,
        chunk_size=30_000,
        ddr_pages=512,
        cxl_pages=4096,
        checkpoints=3,
        pages_per_gb=1024,
        migration_mode="async",
    )
    defaults.update(kw)
    return SimConfig(**defaults)


def num_epochs(cfg):
    return (cfg.total_accesses + cfg.chunk_size - 1) // cfg.chunk_size


class TestWiring:
    def test_instant_mode_has_no_async_engine(self):
        sim = Simulation(
            uniform_workload(footprint_pages=1024, seed=0),
            async_config(migration_mode="instant"),
            policy="anb",
        )
        assert sim.async_engine is None

    def test_async_mode_builds_engine(self):
        sim = Simulation(
            uniform_workload(footprint_pages=1024, seed=0),
            async_config(),
            policy="anb",
        )
        assert sim.async_engine is not None
        assert sim.async_engine.config.inflight_budget == (
            sim.config.migration_inflight_budget
        )

    def test_extra_carries_async_stats(self):
        r = run_policy(build("mcf", seed=0), "anb", async_config())
        assert r.extra["mig_enqueued"] > 0
        assert r.extra["mig_committed"] > 0
        assert "mig_pending" in r.extra

    def test_instant_extra_has_no_async_stats(self):
        r = run_policy(build("mcf", seed=0), "anb",
                       async_config(migration_mode="instant"))
        assert "mig_enqueued" not in r.extra


class TestAbortInjection:
    def run_injected(self, policy="anb", **kw):
        cfg = async_config(migration_abort_rate=0.3, **kw)
        return run_policy(build("mcf", seed=0), policy, cfg), cfg

    def test_run_completes_with_aborts_and_retries(self):
        r, _ = self.run_injected()
        assert r.extra["mig_aborted"] > 0
        assert r.extra["mig_aborted_injected"] > 0
        assert r.extra["mig_retries"] > 0
        assert r.extra["mig_committed"] > 0

    def test_aborted_totals_decompose(self):
        r, _ = self.run_injected()
        assert r.extra["mig_aborted"] == (
            r.extra["mig_aborted_dirty"]
            + r.extra["mig_aborted_injected"]
            + r.extra["mig_aborted_enomem"]
        )

    def test_committed_bounded_by_budget(self):
        r, cfg = self.run_injected(migration_inflight_budget=32)
        assert r.extra["mig_committed"] <= (
            cfg.migration_inflight_budget * num_epochs(cfg)
        )
        # Copies (the thing the budget actually meters) obey it too.
        assert r.extra["mig_pages_copied"] <= (
            cfg.migration_inflight_budget * num_epochs(cfg)
        )

    def test_m5_promoter_feeds_queue(self):
        r, _ = self.run_injected(policy="m5-hpt")
        assert r.extra["mig_enqueued"] > 0
        assert r.extra["mig_committed"] > 0

    def test_deterministic_across_runs(self):
        a, _ = self.run_injected()
        b, _ = self.run_injected()
        assert a.extra == b.extra


class TestTelemetryIntegration:
    def test_migration_events_published(self):
        bus = TelemetryBus([RingBufferSink()])
        cfg = async_config(migration_abort_rate=0.3)
        r = run_policy(build("mcf", seed=0), "anb", cfg, telemetry=bus)
        stages = {e["stage"] for e in r.timeline}
        assert "migration.enqueue" in stages
        assert "migration.commit" in stages
        assert "migration.abort" in stages
        assert "migration.retry" in stages

    def test_timeline_pivot_matches_run_stats(self):
        bus = TelemetryBus([RingBufferSink()])
        cfg = async_config(migration_abort_rate=0.3)
        r = run_policy(build("mcf", seed=0), "anb", cfg, telemetry=bus)
        totals = migration_outcome_totals(r.timeline)
        assert totals["committed"] == r.extra["mig_committed"]
        assert totals["aborted"] == r.extra["mig_aborted"]
        frame = migration_outcomes(r.timeline)
        assert len(frame["epoch"]) == totals["epochs_active"]

    def test_instant_mode_publishes_no_migration_events(self):
        bus = TelemetryBus([RingBufferSink()])
        r = run_policy(build("mcf", seed=0), "anb",
                       async_config(migration_mode="instant"), telemetry=bus)
        assert migration_outcomes(r.timeline) == {}


class TestPerfAccounting:
    def test_copy_traffic_charged_as_contention(self):
        """Migration copy bytes make an epoch strictly slower than the
        same demand traffic without them."""
        from repro.sim.perf import PerformanceModel

        spec = build("mcf", seed=0).spec
        cfg = async_config()
        free = PerformanceModel(cfg, spec)
        charged = PerformanceModel(cfg, spec)
        base = free.record_epoch(10_000, 10_000, 0.0, 0.0)
        loaded = charged.record_epoch(
            10_000, 10_000, 0.0, 0.0, migration_bytes=64 * 4096.0
        )
        assert loaded.memory_s > base.memory_s

    def test_async_run_carries_copy_traffic(self):
        r = run_policy(build("mcf", seed=0), "anb", async_config())
        assert r.extra["mig_pages_copied"] > 0
        assert r.extra["mig_copy_bytes"] == pytest.approx(
            r.extra["mig_pages_copied"] * 4096.0
        )
