"""Tests for the transactional copier and the async engine state machine."""

import numpy as np
import pytest

from repro.memory.migration import MigrationEngine, PinReason
from repro.memory.tiers import NodeKind, TieredMemory
from repro.migration import (
    AsyncMigrationConfig,
    AsyncMigrationEngine,
    Direction,
    FailureInjector,
    MigrationRequest,
    Outcome,
    TransactionalCopier,
)


def make_engine(ddr=4, cxl=16, pages=8, **cfg):
    mem = TieredMemory(ddr_pages=ddr, cxl_pages=cxl, num_logical_pages=pages)
    mem.allocate_all(NodeKind.CXL)
    sync = MigrationEngine(mem)
    return mem, sync, AsyncMigrationEngine(sync, AsyncMigrationConfig(**cfg))


def promote_req(lpage):
    return MigrationRequest(lpage, Direction.PROMOTE)


class TestCopierOutcomes:
    def test_clean_commit(self):
        mem, sync, _ = make_engine()
        copier = TransactionalCopier(sync)
        result = copier.execute(promote_req(0), dirty=set())
        assert result.outcome is Outcome.COMMITTED
        assert result.copies == 1
        assert mem.node_of_page(0) is NodeKind.DDR
        assert sync.stats.promoted == 1
        assert sync.stats.time_us == pytest.approx(copier.remap_us)

    def test_dirty_recheck_aborts(self):
        mem, sync, _ = make_engine()
        copier = TransactionalCopier(sync)
        result = copier.execute(promote_req(0), dirty={0})
        assert result.outcome is Outcome.ABORT_DIRTY
        assert result.copies == 1  # copy bandwidth was wasted
        assert mem.node_of_page(0) is NodeKind.CXL

    def test_injected_dirty_aborts(self):
        _, sync, _ = make_engine()
        copier = TransactionalCopier(
            sync, injector=FailureInjector(dirty_pages=[0])
        )
        result = copier.execute(promote_req(0), dirty=set())
        assert result.outcome is Outcome.ABORT_DIRTY

    def test_injected_copy_abort(self):
        mem, sync, _ = make_engine()
        copier = TransactionalCopier(sync, injector=FailureInjector(abort_rate=1.0))
        result = copier.execute(promote_req(0), dirty=set())
        assert result.outcome is Outcome.ABORT_INJECTED
        assert result.copies == 1
        assert mem.node_of_page(0) is NodeKind.CXL
        assert copier.injector.injected_aborts == 1

    def test_pinned_rejected_before_copy(self):
        _, sync, _ = make_engine()
        sync.pin(np.array([0]), PinReason.DMA)
        copier = TransactionalCopier(sync)
        result = copier.execute(promote_req(0), dirty=set())
        assert result.outcome is Outcome.REJECT_PINNED
        assert result.copies == 0
        assert sync.stats.rejected == 1
        assert sync.stats.rejected_by_reason[PinReason.DMA] == 1

    def test_already_resident_noop(self):
        _, sync, _ = make_engine()
        copier = TransactionalCopier(sync)
        copier.execute(promote_req(0), dirty=set())
        result = copier.execute(promote_req(0), dirty=set())
        assert result.outcome is Outcome.NOOP
        assert result.copies == 0

    def test_demote_direction(self):
        mem, sync, _ = make_engine()
        copier = TransactionalCopier(sync)
        copier.execute(promote_req(0), dirty=set())
        result = copier.execute(
            MigrationRequest(0, Direction.DEMOTE), dirty=set()
        )
        assert result.outcome is Outcome.COMMITTED
        assert mem.node_of_page(0) is NodeKind.CXL


class TestEnomem:
    def fill_ddr(self, copier, n):
        for p in range(n):
            assert copier.execute(promote_req(p), dirty=set()).outcome is (
                Outcome.COMMITTED
            )

    def test_demote_first_fallback(self):
        mem, sync, _ = make_engine(ddr=2)
        copier = TransactionalCopier(sync, enomem_fallback=True)
        self.fill_ddr(copier, 2)
        sync.mglru.age()
        result = copier.execute(promote_req(5), dirty=set())
        assert result.outcome is Outcome.COMMITTED
        assert result.fallback_victim in (0, 1)
        assert result.copies == 2  # victim demotion + promotion copy
        assert mem.node_of_page(5) is NodeKind.DDR
        assert mem.node_of_page(result.fallback_victim) is NodeKind.CXL

    def test_abort_policy_raises_enomem(self):
        mem, sync, _ = make_engine(ddr=2)
        copier = TransactionalCopier(sync, enomem_fallback=False)
        self.fill_ddr(copier, 2)
        result = copier.execute(promote_req(5), dirty=set())
        assert result.outcome is Outcome.ABORT_ENOMEM
        assert result.copies == 0  # failed before any copy work
        assert mem.node_of_page(5) is NodeKind.CXL

    def test_forced_frame_denial(self):
        _, sync, _ = make_engine()
        copier = TransactionalCopier(
            sync, injector=FailureInjector(force_enomem=True)
        )
        result = copier.execute(promote_req(0), dirty=set())
        assert result.outcome is Outcome.ABORT_ENOMEM

    def test_fallback_never_demotes_pinned_victim(self):
        mem, sync, _ = make_engine(ddr=2)
        copier = TransactionalCopier(sync, enomem_fallback=True)
        self.fill_ddr(copier, 2)
        sync.pin(np.array([0]), PinReason.DMA)
        sync.mglru.age()
        result = copier.execute(promote_req(5), dirty=set())
        assert result.fallback_victim == 1
        assert mem.node_of_page(0) is NodeKind.DDR


class TestEngineTick:
    def test_commit_flow(self):
        mem, _, eng = make_engine()
        assert eng.enqueue_promotions([0, 1]) == 2
        report = eng.tick(epoch=1)
        assert report.committed == 2
        assert report.promoted == 2
        assert eng.stats.committed == 2
        assert eng.pending == 0
        assert mem.node_of_page(0) is NodeKind.DDR

    def test_budget_limits_attempts_per_tick(self):
        _, _, eng = make_engine(ddr=8, pages=8, inflight_budget=2)
        eng.enqueue_promotions([0, 1, 2, 3])
        report = eng.tick(epoch=1)
        assert report.committed == 2
        assert eng.pending == 2
        report = eng.tick(epoch=2)
        assert report.committed == 2
        assert eng.pending == 0

    def test_bandwidth_throttle(self):
        # 1 page = 4096 B; 4096 B/s * 2 s = 2 pages per tick.
        _, _, eng = make_engine(ddr=8, copy_gbps=4096 / 1e9)
        eng.enqueue_promotions([0, 1, 2, 3])
        report = eng.tick(epoch=1, epoch_s=2.0)
        assert report.committed == 2
        assert eng.pending == 2

    def test_retry_then_drop(self):
        _, sync, eng = make_engine(max_retries=2, backoff_epochs=0)
        eng.injector.dirty_pages.add(0)  # perpetually dirty page
        eng.enqueue_promotions([0])
        epoch = 1
        while eng.pending and epoch < 50:
            eng.tick(epoch=epoch)
            epoch += 1
        assert eng.stats.aborted == 3  # initial + 2 retries
        assert eng.stats.retries == 2
        assert eng.stats.dropped_retries == 1
        assert eng.stats.committed == 0

    def test_dropped_page_is_renominatable(self):
        _, _, eng = make_engine(max_retries=0, backoff_epochs=0)
        eng.injector.dirty_pages.add(0)
        eng.enqueue_promotions([0])
        eng.tick(epoch=1)
        assert eng.stats.dropped_retries == 1
        eng.injector.dirty_pages.clear()
        assert eng.enqueue_promotions([0]) == 1
        report = eng.tick(epoch=2)
        assert report.committed == 1

    def test_backoff_delays_retry(self):
        _, _, eng = make_engine(max_retries=3, backoff_epochs=2)
        eng.injector.dirty_pages.add(0)
        eng.enqueue_promotions([0])
        eng.tick(epoch=1)  # abort; gated until epoch 1 + 2
        assert eng.tick(epoch=2).attempted == 0
        assert eng.tick(epoch=3).attempted == 1

    def test_backoff_grows_exponentially(self):
        _, _, eng = make_engine(backoff_epochs=1)
        assert eng._backoff_gate(10, retries=1) == 11
        assert eng._backoff_gate(10, retries=2) == 12
        assert eng._backoff_gate(10, retries=3) == 14
        assert eng._backoff_gate(10, retries=4) == 18

    def test_backoff_zero_still_advances(self):
        """Zero backoff must still gate to the *next* epoch, or a
        zero-copy abort (ENOMEM before copy) would loop forever."""
        _, _, eng = make_engine(backoff_epochs=0)
        assert eng._backoff_gate(10, retries=1) == 11

    def test_fallback_charges_double_budget(self):
        _, sync, eng = make_engine(ddr=2, inflight_budget=3)
        eng.enqueue_promotions([0, 1])
        eng.tick(epoch=1)
        sync.mglru.age()
        # DDR full: next promotion costs 2 copies (victim + page);
        # budget 3 admits exactly one such promotion.
        eng.enqueue_promotions([2, 3])
        report = eng.tick(epoch=2)
        assert report.pages_copied <= 3
        assert report.committed == 2  # fallback victim + the promotion
        assert eng.pending == 1

    def test_duplicate_enqueue_counted(self):
        _, _, eng = make_engine()
        eng.enqueue_promotions([0])
        eng.enqueue_promotions([0])
        assert eng.stats.enqueued == 1
        assert eng.stats.duplicates == 1

    def test_queue_overflow_counted(self):
        _, _, eng = make_engine(queue_capacity=2)
        eng.enqueue_promotions([0, 1, 2, 3])
        assert eng.stats.enqueued == 2
        assert eng.stats.dropped_queue_full == 2

    def test_pinned_page_rejected_through_tick(self):
        _, sync, eng = make_engine()
        sync.pin(np.array([0]), PinReason.NODE_BOUND)
        eng.enqueue_promotions([0])
        report = eng.tick(epoch=1)
        assert report.rejected_pinned == 1
        assert eng.stats.rejected_pinned == 1
        # Rejected pages leave the dedupe set (re-nominatable).
        sync.unpin(np.array([0]))
        assert eng.enqueue_promotions([0]) == 1

    def test_stats_flatten_for_run_result(self):
        _, _, eng = make_engine()
        eng.enqueue_promotions([0])
        eng.tick(epoch=1)
        extra = eng.stats.as_extra()
        assert extra["mig_enqueued"] == 1.0
        assert extra["mig_committed"] == 1.0
        assert "mig_pages_copied" in extra

    def test_reset_stats(self):
        _, _, eng = make_engine()
        eng.enqueue_promotions([0])
        eng.tick(epoch=1)
        eng.reset_stats()
        assert eng.stats.committed == 0


class TestConfigValidation:
    def test_bad_budget(self):
        with pytest.raises(ValueError):
            AsyncMigrationConfig(inflight_budget=0)

    def test_bad_retries(self):
        with pytest.raises(ValueError):
            AsyncMigrationConfig(max_retries=-1)

    def test_bad_copy_gbps(self):
        with pytest.raises(ValueError):
            AsyncMigrationConfig(copy_gbps=-1.0)

    def test_from_sim_config(self):
        from repro.sim.config import SimConfig

        cfg = SimConfig(
            migration_mode="async",
            migration_inflight_budget=7,
            migration_abort_rate=0.25,
            migration_enomem_policy="abort",
        )
        acfg = AsyncMigrationConfig.from_sim_config(cfg)
        assert acfg.inflight_budget == 7
        assert acfg.abort_rate == 0.25
        assert acfg.enomem_fallback is False
