"""Tests for the telemetry bus, its sinks, and the engine timeline."""

import json

import pytest

from repro.sim import SimConfig, Simulation
from repro.sim.telemetry import (
    JsonlSink,
    RingBufferSink,
    TelemetryBus,
    TelemetrySink,
    read_jsonl,
)
from repro.workloads import uniform_workload


def small_config(**kw):
    defaults = dict(
        total_accesses=120_000,
        chunk_size=30_000,
        ddr_pages=512,
        cxl_pages=4096,
        checkpoints=3,
        pages_per_gb=1024,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


class RecordingSink(TelemetrySink):
    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event):
        self.events.append(event)

    def close(self):
        self.closed = True


class TestTelemetryBus:
    def test_sink_registration_and_fanout(self):
        bus = TelemetryBus()
        assert not bus.active
        a, b = RecordingSink(), RecordingSink()
        bus.attach(a)
        bus.attach(b)
        assert bus.active
        bus.publish("epoch", 1, 0.5, n_ddr=10)
        assert a.events == b.events
        assert a.events[0] == {"stage": "epoch", "epoch": 1, "t_s": 0.5, "n_ddr": 10}

    def test_detach_stops_delivery(self):
        bus = TelemetryBus()
        sink = RecordingSink()
        bus.attach(sink)
        bus.detach(sink)
        bus.publish("epoch", 1, 0.0)
        assert sink.events == []
        assert not bus.active

    def test_publish_without_sinks_is_noop(self):
        TelemetryBus().publish("epoch", 1, 0.0, anything=1)  # must not raise

    def test_close_closes_every_sink(self):
        bus = TelemetryBus([RecordingSink(), RecordingSink()])
        bus.close()
        assert all(s.closed for s in bus.sinks)


class TestRingBufferSink:
    def test_keeps_events_in_order(self):
        ring = RingBufferSink(capacity=10)
        for i in range(5):
            ring.emit({"epoch": i})
        assert [e["epoch"] for e in ring.events] == [0, 1, 2, 3, 4]
        assert len(ring) == 5

    def test_eviction_drops_oldest(self):
        ring = RingBufferSink(capacity=3)
        for i in range(7):
            ring.emit({"epoch": i})
        assert [e["epoch"] for e in ring.events] == [4, 5, 6]
        assert len(ring) == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_dropped_counts_evictions(self):
        ring = RingBufferSink(capacity=3)
        for i in range(7):
            ring.emit({"epoch": i})
        assert ring.dropped == 4

    def test_dropped_zero_without_overflow(self):
        ring = RingBufferSink(capacity=10)
        ring.emit({"epoch": 0})
        assert ring.dropped == 0

    def test_clear_resets_dropped(self):
        ring = RingBufferSink(capacity=1)
        ring.emit({"epoch": 0})
        ring.emit({"epoch": 1})
        ring.clear()
        assert ring.dropped == 0
        assert len(ring) == 0


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "timeline.jsonl")
        sink = JsonlSink(path)
        events = [
            {"stage": "epoch", "epoch": 1, "t_s": 0.25, "n_ddr": 3},
            {"stage": "ratio", "epoch": 2, "t_s": 0.50, "ratio": 0.9},
        ]
        for e in events:
            sink.emit(e)
        sink.close()
        assert read_jsonl(path) == events

    def test_lazy_open_creates_no_empty_file(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(str(path))
        sink.close()
        assert not path.exists()

    def test_flush_every_n_events(self, tmp_path):
        path = tmp_path / "batched.jsonl"
        sink = JsonlSink(str(path), flush_every=2)
        sink.emit({"stage": "epoch", "epoch": 1, "t_s": 0.0})
        flushed_after_one = path.read_text()
        sink.emit({"stage": "epoch", "epoch": 2, "t_s": 0.1})
        flushed_after_two = path.read_text()
        # the first event sits in the buffer; the second triggers a flush
        assert flushed_after_one == ""
        assert len(flushed_after_two.splitlines()) == 2
        sink.close()

    def test_flush_every_zero_defers_to_close(self, tmp_path):
        path = tmp_path / "deferred.jsonl"
        sink = JsonlSink(str(path), flush_every=0)
        for i in range(10):
            sink.emit({"stage": "epoch", "epoch": i, "t_s": 0.0})
        sink.close()
        assert len(read_jsonl(str(path))) == 10

    def test_negative_flush_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(str(tmp_path / "x.jsonl"), flush_every=-1)

    def test_accepts_open_file_object(self, tmp_path):
        path = tmp_path / "fh.jsonl"
        with open(path, "w") as fh:
            sink = JsonlSink(fh)
            sink.emit({"stage": "epoch", "epoch": 1, "t_s": 0.0})
            sink.close()  # flushes, must not close the caller's handle
            assert not fh.closed
        assert len(read_jsonl(str(path))) == 1

    def test_emit_after_close_appends(self, tmp_path):
        """Regression: a close/re-emit cycle must not truncate.

        The sink used to reopen its path with mode "w" on the emit
        after a close, silently destroying every event written before
        — fatal for any long-running service that closes sinks between
        sessions.  The reopen must append.
        """
        path = str(tmp_path / "long_run.jsonl")
        sink = JsonlSink(path)
        sink.emit({"stage": "epoch", "epoch": 1, "t_s": 0.1})
        sink.emit({"stage": "epoch", "epoch": 2, "t_s": 0.2})
        sink.close()
        sink.emit({"stage": "epoch", "epoch": 3, "t_s": 0.3})
        sink.close()
        events = read_jsonl(path)
        assert [e["epoch"] for e in events] == [1, 2, 3]

    def test_repeated_close_reopen_cycles_keep_appending(self, tmp_path):
        path = str(tmp_path / "cycles.jsonl")
        sink = JsonlSink(path)
        for epoch in range(5):
            sink.emit({"stage": "epoch", "epoch": epoch, "t_s": 0.0})
            sink.close()
        assert [e["epoch"] for e in read_jsonl(path)] == list(range(5))

    def test_first_open_still_truncates_stale_file(self, tmp_path):
        # Append-on-reopen must not turn into append-always: a fresh
        # sink pointed at a leftover file starts a fresh timeline.
        path = tmp_path / "stale.jsonl"
        path.write_text('{"stage": "old", "epoch": 99, "t_s": 0.0}\n')
        sink = JsonlSink(str(path))
        sink.emit({"stage": "epoch", "epoch": 1, "t_s": 0.0})
        sink.close()
        assert [e["epoch"] for e in read_jsonl(str(path))] == [1]

    def test_pickle_roundtrip_resumes_in_append_mode(self, tmp_path):
        """A checkpointed sink must extend its file, not restart it."""
        import pickle

        path = str(tmp_path / "ckpt.jsonl")
        sink = JsonlSink(path)
        sink.emit({"stage": "epoch", "epoch": 1, "t_s": 0.0})
        blob = pickle.dumps(sink)
        sink.close()
        restored = pickle.loads(blob)
        restored.emit({"stage": "epoch", "epoch": 2, "t_s": 0.1})
        restored.close()
        assert [e["epoch"] for e in read_jsonl(path)] == [1, 2]

    def test_pickle_rejects_externally_owned_file(self, tmp_path):
        import pickle

        with open(tmp_path / "ext.jsonl", "w") as fh:
            sink = JsonlSink(fh)
            with pytest.raises(TypeError):
                pickle.dumps(sink)


class TestEngineTimeline:
    def test_run_result_has_epoch_timeline(self):
        sim = Simulation(
            uniform_workload(footprint_pages=1024, seed=0),
            small_config(),
            policy="none",
        )
        result = sim.run()
        epochs = result.timeline_events("epoch")
        assert len(epochs) == small_config().num_epochs
        assert epochs[0]["nr_pages_cxl"] == 1024
        assert all("overhead_us" in e and "migration_us" in e for e in epochs)

    def test_ratio_checkpoints_mirrored_on_timeline(self):
        sim = Simulation(
            uniform_workload(footprint_pages=1024, seed=0),
            small_config(migrate=False),
            policy="none",
        )
        result = sim.run()
        ratios = [e["ratio"] for e in result.timeline_events("ratio")]
        assert ratios == result.ratio_checkpoints

    def test_custom_bus_receives_engine_events(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        bus = TelemetryBus([JsonlSink(path)])
        sim = Simulation(
            uniform_workload(footprint_pages=1024, seed=0),
            small_config(),
            policy="none",
            telemetry=bus,
        )
        result = sim.run()
        bus.close()
        events = read_jsonl(path)
        assert [e for e in events if e["stage"] == "epoch"]
        # the JSONL stream and the in-memory timeline agree
        assert json.loads(json.dumps(result.timeline)) == events
