"""Checkpoint/resume: kill a run at an arbitrary epoch, resume from
the last periodic snapshot, and demand bit-identity with a run that
was never interrupted — and never checkpointed at all.

The comparison excludes exactly one thing: the wall-clock stage-time
recorders (``WALL_CLOCK_FAMILIES``), which measure the host process,
not the simulation.
"""

import dataclasses
import os
import pickle
import random

import pytest

from repro.obs import Observability
from repro.sim import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    SimConfig,
    Simulation,
)
from repro.verify.differential import WALL_CLOCK_FAMILIES, _metric_mismatches
from repro.workloads import uniform_workload

ENGINES = ("reference", "batched")
MIGRATION_MODES = ("instant", "async")


def make_config(**kw):
    defaults = dict(
        total_accesses=200_000,
        chunk_size=20_000,
        ddr_pages=512,
        cxl_pages=4096,
        checkpoints=3,
        pages_per_gb=1024,
        seed=11,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


def make_sim(cfg, seed=11, policy="m5-hpt"):
    return Simulation(
        uniform_workload(footprint_pages=2048, seed=seed),
        cfg,
        policy=policy,
        obs=Observability(metrics=True, tracing=False),
    )


def assert_bit_identical(a, b):
    """Every RunResult field equal; metrics equal modulo wall-clock."""
    da = dataclasses.asdict(a)
    db = dataclasses.asdict(b)
    ma, mb = da.pop("metrics"), db.pop("metrics")
    assert da == db
    assert _metric_mismatches(ma, mb) == 0


class TestKillAndResume:
    """The crash/resume suite: abort at a random epoch, resume from
    the last checkpoint, compare against the uninterrupted run."""

    EVERY = 3

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("mode", MIGRATION_MODES)
    def test_resume_after_kill_is_bit_identical(
        self, tmp_path, engine, mode
    ):
        baseline_cfg = make_config(engine=engine, migration_mode=mode)
        baseline = make_sim(baseline_cfg).run()

        ckpt = str(tmp_path / f"{engine}-{mode}.ckpt")
        cfg = make_config(
            engine=engine,
            migration_mode=mode,
            checkpoint_every=self.EVERY,
            checkpoint_path=ckpt,
        )
        sim = make_sim(cfg)
        st = sim._initial_state()
        # Abort somewhere past the first checkpoint but before the
        # end — seeded, so the "random" epoch is reproducible.
        kill_epoch = random.Random(f"{engine}/{mode}").randrange(
            self.EVERY, cfg.num_epochs
        )
        for _ in range(kill_epoch):
            sim.step_epoch(st, sim.epoch_policy)
        del sim, st  # the kill: state vanishes, only the file survives

        resumed_sim = Simulation.load_state(ckpt)
        resumed_at = resumed_sim.resumed_epoch
        assert resumed_at is not None
        assert resumed_at == (kill_epoch // self.EVERY) * self.EVERY
        result = resumed_sim.run()
        assert_bit_identical(baseline, result)
        # The resume re-ran a real tail, or this test proves nothing.
        assert resumed_at < cfg.num_epochs

    @pytest.mark.parametrize("engine", ENGINES)
    def test_checkpointing_itself_is_invisible(self, tmp_path, engine):
        """With no kill at all, a checkpointed run's results equal a
        checkpoint-free run's — persisting must not perturb the
        timeline, the metrics, or any result field."""
        plain = make_sim(make_config(engine=engine)).run()
        sim = make_sim(make_config(
            engine=engine,
            checkpoint_every=4,
            checkpoint_path=str(tmp_path / "c.ckpt"),
        ))
        checkpointed = sim.run()
        assert sim.checkpoints_written == sim.config.num_epochs // 4
        assert_bit_identical(plain, checkpointed)


class TestCheckpointMechanics:
    def test_save_rejects_tracing(self, tmp_path):
        sim = Simulation(
            uniform_workload(footprint_pages=256, seed=0),
            make_config(total_accesses=40_000),
            policy="none",
            obs=Observability(metrics=True),  # tracing defaults on
        )
        st = sim._initial_state()
        with pytest.raises(CheckpointError, match="tracing"):
            sim.save_state(tmp_path / "t.ckpt", st)

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "future.ckpt"
        with open(path, "wb") as fh:
            pickle.dump(
                {"format": CHECKPOINT_FORMAT_VERSION + 1, "sim": object()},
                fh,
            )
        with pytest.raises(CheckpointError, match="format"):
            Simulation.load_state(path)

    def test_load_rejects_non_checkpoint_pickle(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        with open(path, "wb") as fh:
            pickle.dump(["not", "a", "checkpoint"], fh)
        with pytest.raises(CheckpointError):
            Simulation.load_state(path)

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        ckpt = tmp_path / "atomic.ckpt"
        sim = make_sim(make_config(total_accesses=40_000))
        st = sim._initial_state()
        sim.step_epoch(st, sim.epoch_policy)
        sim.save_state(ckpt, st)
        assert ckpt.exists()
        assert not (tmp_path / "atomic.ckpt.tmp").exists()
        # Overwriting is also atomic: the new snapshot replaces the
        # old in one rename.
        sim.step_epoch(st, sim.epoch_policy)
        sim.save_state(ckpt, st)
        assert Simulation.load_state(ckpt).resumed_epoch == 2

    def test_save_is_durable_fsyncs_before_publish(
        self, tmp_path, monkeypatch
    ):
        """The snapshot must hit the platter before ``os.replace``
        publishes it — a rename alone survives a process crash but
        not a power cut."""
        synced = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        sim = make_sim(make_config(total_accesses=40_000))
        st = sim._initial_state()
        sim.step_epoch(st, sim.epoch_policy)
        sim.save_state(tmp_path / "durable.ckpt", st)
        assert synced, "save_state published the snapshot without fsync"

    def test_instrumented_run_keeps_sim_clock_picklable(self):
        """The tracer's simulated-clock binding rides inside
        checkpoint pickles; a lambda closure there breaks every
        checkpoint taken after an instrumented run."""
        from repro.obs.tracing import SimClock

        sim = Simulation(
            uniform_workload(footprint_pages=256, seed=0),
            make_config(total_accesses=40_000),
            policy="none",
            obs=Observability(metrics=True),  # tracing defaults on
        )
        sim.run()
        clock = sim.obs.tracer.sim_clock
        assert isinstance(clock, SimClock)
        revived = pickle.loads(pickle.dumps(clock))
        assert revived() == clock()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimConfig(checkpoint_every=-1)
        with pytest.raises(ValueError):
            SimConfig(checkpoint_every=5)  # no checkpoint_path
        cfg = SimConfig(checkpoint_every=5, checkpoint_path="/tmp/x.ckpt")
        assert cfg.checkpoint_every == 5

    def test_wall_clock_exclusion_is_narrow(self):
        # The only families the bit-identity comparison may ignore
        # are the wall-clock recorders; this pins the list so a new
        # nondeterministic family cannot hide behind the exclusion.
        assert WALL_CLOCK_FAMILIES == frozenset({"pipeline_stage_seconds"})
