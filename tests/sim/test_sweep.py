"""Tests for the sweep utilities and M5Options plumbing."""

import copy

import pytest

from repro.core.manager import HPT_DRIVEN, HPT_ONLY, HWT_DRIVEN
from repro.sim import (
    M5Options,
    SimConfig,
    Simulation,
    cell_seed,
    collect_matrix,
    matrix_means,
    normalized,
    run_matrix,
    run_one,
)
from repro.workloads import build


def tiny_config():
    return SimConfig(total_accesses=60_000, chunk_size=30_000,
                     ddr_pages=512, cxl_pages=8192, checkpoints=1)


class TestRunOne:
    def test_runs(self):
        result = run_one("mcf", "none", tiny_config())
        assert result.benchmark == "mcf"
        assert result.policy == "none"

    def test_pages_per_gb_override(self):
        result = run_one("mcf", "none", tiny_config(), pages_per_gb=512)
        assert result.nr_pages_cxl < 4000  # half-size footprint


class TestMatrix:
    def test_matrix_shape_and_means(self):
        matrix = run_matrix(["mcf"], ["anb", "m5-hpt"], tiny_config)
        assert set(matrix) == {"mcf"}
        assert set(matrix["mcf"]) == {"anb", "m5-hpt"}
        means = matrix_means(matrix)
        assert means["anb"] == matrix["mcf"]["anb"]

    def test_normalized_uses_p99_for_redis(self):
        base = run_one("redis", "none", tiny_config())
        same = run_one("redis", "none", tiny_config())
        assert normalized(base, same) == pytest.approx(1.0)

    def test_none_cell_reuses_baseline_run(self):
        matrix = run_matrix(["mcf"], ["none", "anb"], tiny_config)
        # reused baseline normalises against itself: exactly 1.0
        assert matrix["mcf"]["none"] == 1.0
        results = collect_matrix(["mcf"], ["none", "anb"], tiny_config)
        assert set(results["mcf"]) == {"none", "anb"}

    def test_normalized_raises_on_zero_p99_measurement(self):
        base = run_one("redis", "none", tiny_config())
        broken = copy.copy(base)
        broken.p99_latency_us = 0.0
        with pytest.raises(ValueError):
            normalized(base, broken)
        with pytest.raises(ValueError):
            normalized(broken, base)

    def test_normalized_falls_back_when_p99_missing(self):
        base = run_one("redis", "none", tiny_config())
        no_p99 = copy.copy(base)
        no_p99.p99_latency_us = None
        assert normalized(base, no_p99) == pytest.approx(1.0)


class TestParallelMatrix:
    def test_cell_seed_deterministic_and_policy_independent(self):
        assert cell_seed(1, "mcf") == cell_seed(1, "mcf")
        assert cell_seed(1, "mcf") != cell_seed(2, "mcf")
        assert cell_seed(1, "mcf") != cell_seed(1, "roms")

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_matrix(["mcf"], ["anb"], tiny_config, jobs=0)

    def test_parallel_matches_serial(self):
        benches = ["mcf", "roms"]
        policies = ["none", "anb", "m5-hpt"]
        serial = run_matrix(benches, policies, tiny_config, jobs=1)
        parallel = run_matrix(benches, policies, tiny_config, jobs=4)
        assert serial == parallel

    def test_parallel_results_identical_to_serial(self):
        serial = collect_matrix(["mcf"], ["anb"], tiny_config, jobs=1)
        parallel = collect_matrix(["mcf"], ["anb"], tiny_config, jobs=2)
        for bench in serial:
            for policy in serial[bench]:
                s, p = serial[bench][policy], parallel[bench][policy]
                assert s.execution_time_s == p.execution_time_s
                assert s.promoted == p.promoted
                assert s.demoted == p.demoted
                assert s.hot_pfns == p.hot_pfns
                assert s.ratio_checkpoints == p.ratio_checkpoints


class TestM5OptionsPlumbing:
    def test_mode_map(self):
        for policy, mode in (
            ("m5-hpt", HPT_ONLY),
            ("m5-hwt", HWT_DRIVEN),
            ("m5-hpt+hwt", HPT_DRIVEN),
        ):
            sim = Simulation(build("mcf", seed=0), tiny_config(),
                             policy=policy)
            assert sim._manager.nominator.mode == mode

    def test_nominator_mode_override_on_m5_hpt(self):
        opts = M5Options(nominator_mode=HWT_DRIVEN)
        sim = Simulation(build("mcf", seed=0), tiny_config(),
                         policy="m5-hpt", m5_options=opts)
        assert sim._manager.nominator.mode == HWT_DRIVEN
        assert sim._manager.hwt is not None

    def test_space_saving_algorithm_option(self):
        opts = M5Options(algorithm="space-saving", num_counters=50, k_hpt=16)
        sim = Simulation(build("mcf", seed=0), tiny_config(),
                         policy="m5-hpt", m5_options=opts)
        assert sim._manager.hpt.capacity == 50
