"""Tests for the sweep utilities and M5Options plumbing."""

import pytest

from repro.core.manager import HPT_DRIVEN, HPT_ONLY, HWT_DRIVEN
from repro.sim import (
    M5Options,
    SimConfig,
    Simulation,
    matrix_means,
    normalized,
    run_matrix,
    run_one,
)
from repro.workloads import build


def tiny_config():
    return SimConfig(total_accesses=60_000, chunk_size=30_000,
                     ddr_pages=512, cxl_pages=8192, checkpoints=1)


class TestRunOne:
    def test_runs(self):
        result = run_one("mcf", "none", tiny_config())
        assert result.benchmark == "mcf"
        assert result.policy == "none"

    def test_pages_per_gb_override(self):
        result = run_one("mcf", "none", tiny_config(), pages_per_gb=512)
        assert result.nr_pages_cxl < 4000  # half-size footprint


class TestMatrix:
    def test_matrix_shape_and_means(self):
        matrix = run_matrix(["mcf"], ["anb", "m5-hpt"], tiny_config)
        assert set(matrix) == {"mcf"}
        assert set(matrix["mcf"]) == {"anb", "m5-hpt"}
        means = matrix_means(matrix)
        assert means["anb"] == matrix["mcf"]["anb"]

    def test_normalized_uses_p99_for_redis(self):
        base = run_one("redis", "none", tiny_config())
        same = run_one("redis", "none", tiny_config())
        assert normalized(base, same) == pytest.approx(1.0)


class TestM5OptionsPlumbing:
    def test_mode_map(self):
        for policy, mode in (
            ("m5-hpt", HPT_ONLY),
            ("m5-hwt", HWT_DRIVEN),
            ("m5-hpt+hwt", HPT_DRIVEN),
        ):
            sim = Simulation(build("mcf", seed=0), tiny_config(),
                             policy=policy)
            assert sim._manager.nominator.mode == mode

    def test_nominator_mode_override_on_m5_hpt(self):
        opts = M5Options(nominator_mode=HWT_DRIVEN)
        sim = Simulation(build("mcf", seed=0), tiny_config(),
                         policy="m5-hpt", m5_options=opts)
        assert sim._manager.nominator.mode == HWT_DRIVEN
        assert sim._manager.hwt is not None

    def test_space_saving_algorithm_option(self):
        opts = M5Options(algorithm="space-saving", num_counters=50, k_hpt=16)
        sim = Simulation(build("mcf", seed=0), tiny_config(),
                         policy="m5-hpt", m5_options=opts)
        assert sim._manager.hpt.capacity == 50
