"""Tests for the simulation engine."""

import numpy as np
import pytest

from repro.cxl.pac import PageAccessCounter
from repro.memory.address import PAGE_SIZE, AddressRegion
from repro.memory.tiers import NodeKind
from repro.sim.config import SimConfig
from repro.sim.engine import (
    ALL_POLICIES,
    M5Options,
    Simulation,
    access_count_ratio,
    run_policy,
)
from repro.workloads import build, uniform_workload


def small_config(**kw):
    defaults = dict(
        total_accesses=120_000,
        chunk_size=30_000,
        ddr_pages=512,
        cxl_pages=4096,
        checkpoints=3,
        pages_per_gb=1024,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


def small_workload(seed=0):
    return uniform_workload(footprint_pages=1024, seed=seed)


class TestAccessCountRatio:
    def region_pac(self):
        region = AddressRegion(0, 64 * PAGE_SIZE)
        pac = PageAccessCounter(region)
        pages = np.repeat(np.arange(8), [50, 40, 30, 20, 10, 5, 2, 1])
        pac.observe((pages.astype(np.uint64) << np.uint64(12)))
        return pac

    def test_perfect_identification(self):
        pac = self.region_pac()
        assert access_count_ratio(pac, [0, 1, 2]) == pytest.approx(1.0)

    def test_warm_identification_below_one(self):
        pac = self.region_pac()
        assert access_count_ratio(pac, [5, 6, 7]) < 0.2

    def test_duplicates_collapsed(self):
        pac = self.region_pac()
        assert access_count_ratio(pac, [0, 0, 0]) == pytest.approx(1.0)

    def test_k_cap(self):
        pac = self.region_pac()
        capped = access_count_ratio(pac, [0, 5, 6], k_cap=1)
        assert capped == pytest.approx(1.0)  # only first identified scored

    def test_empty(self):
        pac = self.region_pac()
        assert access_count_ratio(pac, []) == 0.0


class TestSimulationBasics:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Simulation(small_workload(), small_config(), policy="hemem")

    def test_all_pages_start_on_cxl(self):
        sim = Simulation(small_workload(), small_config(), policy="none")
        assert sim.memory.nr_pages(NodeKind.CXL) == 1024

    def test_cxl_capacity_grows_to_fit_footprint(self):
        wl = uniform_workload(footprint_pages=8192)
        sim = Simulation(wl, small_config(cxl_pages=64), policy="none")
        assert sim.memory.cxl.capacity_pages >= 8192

    def test_run_produces_result(self):
        r = run_policy(small_workload(), "none", small_config())
        assert r.execution_time_s > 0
        assert r.policy == "none"
        assert r.nr_pages_cxl == 1024

    def test_pac_sees_every_cxl_access(self):
        cfg = small_config(migrate=False)
        sim = Simulation(small_workload(), cfg, policy="none")
        sim.run()
        assert sim.pac.total_accesses == cfg.total_accesses

    def test_wac_optional(self):
        sim = Simulation(small_workload(), small_config(), policy="none",
                         enable_wac=True)
        sim.run()
        assert sim.wac is not None
        assert sim.wac.total_accesses > 0

    def test_identification_mode_moves_nothing(self):
        r = run_policy(small_workload(), "anb",
                       small_config(migrate=False))
        assert r.promoted == 0
        assert r.nr_pages_ddr == 0
        assert r.ratio_checkpoints  # ratios collected instead

    def test_migration_mode_moves_pages(self):
        wl = build("mcf", seed=0)
        r = run_policy(wl, "anb", small_config(total_accesses=240_000))
        assert r.promoted > 0
        assert r.nr_pages_ddr > 0

    def test_ddr_capacity_respected(self):
        wl = build("mcf", seed=0)
        cfg = small_config(total_accesses=240_000, ddr_pages=256)
        r = run_policy(wl, "anb", cfg)
        assert r.nr_pages_ddr <= 256


class TestPolicies:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_every_policy_runs(self, policy):
        wl = build("mcf", seed=0)
        r = run_policy(wl, policy, small_config(migrate=False))
        assert r.execution_time_s > 0

    def test_overhead_none_is_zero(self):
        r = run_policy(small_workload(), "none", small_config())
        assert r.overhead_time_s == 0.0

    def test_anb_overhead_positive(self):
        wl = build("mcf", seed=0)
        r = run_policy(wl, "anb", small_config(migrate=False))
        assert r.overhead_time_s > 0
        assert "hinting_fault" in r.overhead_events

    def test_m5_overhead_far_below_cpu_driven(self):
        """The headline M5 property: virtually no identification cost."""
        wl = build("mcf", seed=0)
        cfg = small_config(migrate=False)
        anb = run_policy(build("mcf", seed=0), "anb", cfg)
        m5 = run_policy(wl, "m5-hpt", cfg)
        assert m5.overhead_time_s < anb.overhead_time_s / 10

    def test_m5_identifies_hotter_pages_than_anb(self):
        wl_seed = 0
        cfg = small_config(migrate=False, total_accesses=240_000)
        anb = run_policy(build("roms", seed=wl_seed), "anb", cfg)
        m5 = run_policy(build("roms", seed=wl_seed), "m5-hpt", cfg)
        assert m5.access_count_ratio > anb.access_count_ratio

    def test_m5_hwt_policy_uses_word_tracker(self):
        wl = build("redis", seed=0)
        sim = Simulation(wl, small_config(migrate=False), policy="m5-hwt")
        assert sim._manager.hwt is not None
        sim.run()
        assert sim._manager.nominated_history

    def test_m5_options_respected(self):
        opts = M5Options(algorithm="space-saving", num_counters=64, k_hpt=8)
        sim = Simulation(small_workload(), small_config(), policy="m5-hpt",
                         m5_options=opts)
        assert sim._manager.hpt.capacity == 64
        assert sim._manager.hpt.k == 8


class TestEndToEndPerformance:
    def test_migration_beats_no_migration_on_skewed_workload(self):
        cfg = SimConfig(
            total_accesses=600_000, chunk_size=30_000,
            ddr_pages=2048, cxl_pages=8192, checkpoints=1,
        )
        base = run_policy(build("roms", seed=1), "none", cfg)
        m5 = run_policy(build("roms", seed=1), "m5-hpt", cfg)
        assert m5.execution_time_s < base.execution_time_s

    def test_p99_reported_only_for_latency_sensitive(self):
        cfg = small_config(migrate=False)
        redis = run_policy(build("redis", seed=0), "none", cfg)
        mcf = run_policy(build("mcf", seed=0), "none", cfg)
        assert redis.p99_latency_us is not None
        assert mcf.p99_latency_us is None
