"""Tests for SimConfig and the performance model."""

import pytest

from repro.sim.config import SimConfig
from repro.sim.perf import PerformanceModel
from repro.workloads.base import WorkloadSpec


def spec(mpki=20.0, cores=1, latency_sensitive=False):
    return WorkloadSpec(name="t", footprint_pages=100, mpki=mpki, cores=cores,
                        latency_sensitive=latency_sensitive)


class TestSimConfig:
    def test_derived_scales(self):
        cfg = SimConfig(pages_per_gb=1024, trace_subsample=16)
        assert cfg.footprint_scale == 256
        assert cfg.time_dilation == 256 * 16

    def test_explicit_dilation_respected(self):
        cfg = SimConfig(time_dilation=10.0)
        assert cfg.time_dilation == 10.0

    def test_num_epochs(self):
        cfg = SimConfig(total_accesses=100, chunk_size=30)
        assert cfg.num_epochs == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(total_accesses=0)
        with pytest.raises(ValueError):
            SimConfig(mlp=0)
        with pytest.raises(ValueError):
            SimConfig(checkpoints=0)
        with pytest.raises(ValueError):
            SimConfig(trace_subsample=0.5)


class TestPerformanceModel:
    def cfg(self):
        return SimConfig(time_dilation=1.0, footprint_scale=1.0, mlp=1.0)

    def test_memory_time_uses_tier_latencies(self):
        perf = PerformanceModel(self.cfg(), spec())
        e = perf.record_epoch(n_ddr=1000, n_cxl=0, overhead_us=0,
                              migration_us=0)
        assert e.memory_s == pytest.approx(1000 * 100e-9)
        e2 = perf.record_epoch(n_ddr=0, n_cxl=1000, overhead_us=0,
                               migration_us=0)
        assert e2.memory_s == pytest.approx(1000 * 270e-9)

    def test_all_cxl_roughly_twice_all_ddr(self):
        """The no-migration gap the paper reports (~2x, Figure 9)."""
        cfg = SimConfig(time_dilation=1.0, footprint_scale=1.0, mlp=4.0)
        perf = PerformanceModel(cfg, spec(mpki=25.0))
        ddr = perf.record_epoch(100_000, 0, 0, 0).total_s
        cxl = perf.record_epoch(0, 100_000, 0, 0).total_s
        assert cxl / ddr == pytest.approx(2.0, abs=0.35)

    def test_cores_shrink_wall_time(self):
        solo = PerformanceModel(self.cfg(), spec(cores=1))
        multi = PerformanceModel(self.cfg(), spec(cores=8))
        a = solo.record_epoch(1000, 0, 0, 0).total_s
        b = multi.record_epoch(1000, 0, 0, 0).total_s
        assert a == pytest.approx(8 * b)

    def test_overhead_not_divided_by_cores(self):
        perf = PerformanceModel(self.cfg(), spec(cores=8))
        e = perf.record_epoch(0, 0, overhead_us=100.0, migration_us=0)
        assert e.overhead_s == pytest.approx(100e-6)

    def test_migration_scaled_by_page_grouping(self):
        cfg = SimConfig(time_dilation=1.0, footprint_scale=256.0)
        perf = PerformanceModel(cfg, spec())
        e = perf.record_epoch(0, 0, 0, migration_us=54.0)
        # One model page = 256 real pages; only the overlap fraction
        # lands on the critical path.
        assert e.migration_s == pytest.approx(
            54e-6 * 256 * cfg.migration_overlap
        )

    def test_aggregates(self):
        perf = PerformanceModel(self.cfg(), spec())
        perf.record_epoch(1000, 1000, 10.0, 5.0)
        perf.record_epoch(1000, 1000, 10.0, 5.0)
        assert perf.execution_time_s == pytest.approx(
            perf.app_time_s + perf.overhead_time_s + perf.migration_time_s
        )
        assert perf.overhead_time_s == pytest.approx(20e-6)

    def test_overhead_utilisation(self):
        perf = PerformanceModel(self.cfg(), spec())
        perf.record_epoch(1000, 0, overhead_us=0.0, migration_us=0.0)
        assert perf.overhead_utilisation() == 0.0

    def test_p99_inflates_with_overhead(self):
        quiet = PerformanceModel(self.cfg(), spec(latency_sensitive=True))
        noisy = PerformanceModel(self.cfg(), spec(latency_sensitive=True))
        for _ in range(10):
            quiet.record_epoch(10_000, 10_000, 0.0, 0.0)
            noisy.record_epoch(10_000, 10_000, 400.0, 0.0)
        assert noisy.p99_latency_us() > quiet.p99_latency_us()

    def test_p99_empty(self):
        perf = PerformanceModel(self.cfg(), spec())
        assert perf.p99_latency_us() == 0.0

    def test_p99_scores_steady_state_not_warmup(self):
        """A heavy fill phase in the first half must not anchor the
        tail (YCSB measures after loading)."""
        warm = PerformanceModel(self.cfg(), spec(latency_sensitive=True))
        cold = PerformanceModel(self.cfg(), spec(latency_sensitive=True))
        for i in range(20):
            # warm: expensive first half, clean second half.
            ovh = 500.0 if i < 10 else 0.0
            warm.record_epoch(10_000, 10_000, ovh, ovh)
            cold.record_epoch(10_000, 10_000, 0.0, 0.0)
        assert warm.p99_latency_us() == pytest.approx(cold.p99_latency_us())

    def test_p99_penalises_persistent_interference(self):
        busy = PerformanceModel(self.cfg(), spec(latency_sensitive=True))
        idle = PerformanceModel(self.cfg(), spec(latency_sensitive=True))
        for _ in range(20):
            busy.record_epoch(10_000, 10_000, 300.0, 300.0)
            idle.record_epoch(10_000, 10_000, 0.0, 0.0)
        assert busy.p99_latency_us() > idle.p99_latency_us()

    def test_interference_utilisation(self):
        perf = PerformanceModel(self.cfg(), spec())
        perf.record_epoch(1000, 0, overhead_us=10.0, migration_us=0.0)
        assert perf.interference_utilisation() > perf.overhead_utilisation() - 1e-12


class TestBandwidthCeilings:
    def test_unlimited_by_default(self):
        cfg = SimConfig(time_dilation=1.0, footprint_scale=1.0, mlp=1.0)
        perf = PerformanceModel(cfg, spec())
        e = perf.record_epoch(1_000_000, 0, 0, 0)
        assert e.memory_s == pytest.approx(1_000_000 * 100e-9)

    def test_ceiling_binds_when_tight(self):
        cfg = SimConfig(time_dilation=1.0, footprint_scale=1.0, mlp=1.0,
                        ddr_bandwidth_gbps=0.1)
        perf = PerformanceModel(cfg, spec())
        n = 1_000_000
        e = perf.record_epoch(n, 0, 0, 0)
        assert e.memory_s == pytest.approx(n * 64 / 0.1e9)

    def test_latency_binds_when_bandwidth_ample(self):
        cfg = SimConfig(time_dilation=1.0, footprint_scale=1.0, mlp=1.0,
                        ddr_bandwidth_gbps=1000.0)
        perf = PerformanceModel(cfg, spec())
        e = perf.record_epoch(1_000_000, 0, 0, 0)
        assert e.memory_s == pytest.approx(1_000_000 * 100e-9)

    def test_bandwidth_shared_across_cores(self):
        """Latency divides by cores; bandwidth does not."""
        cfg = SimConfig(time_dilation=1.0, footprint_scale=1.0, mlp=1.0,
                        ddr_bandwidth_gbps=0.1)
        solo = PerformanceModel(cfg, spec(cores=1))
        multi = PerformanceModel(cfg, spec(cores=16))
        n = 1_000_000
        assert multi.record_epoch(n, 0, 0, 0).memory_s == pytest.approx(
            solo.record_epoch(n, 0, 0, 0).memory_s
        )
