"""Failure-injection and edge-condition tests.

These exercise the control-register paths, mid-run reconfiguration,
and hostile inputs that normal runs never hit.
"""

import numpy as np

from repro.core.manager import Elector, MonitorSample
from repro.cxl.controller import CxlController
from repro.cxl.pac import PageAccessCounter
from repro.cxl.wac import WordAccessCounter
from repro.memory.address import PAGE_SIZE, AddressRegion
from repro.memory.migration import MigrationEngine, PinReason
from repro.memory.tiers import NodeKind, TieredMemory

BASE = 0x8000_0000


def region(pages=32):
    return AddressRegion(BASE, pages * PAGE_SIZE)


def pa_of(pages):
    return np.uint64(BASE) + np.asarray(pages, dtype=np.uint64) * np.uint64(
        PAGE_SIZE
    )


class TestProfilerControlPaths:
    def test_pac_disable_enable_midstream(self):
        pac = PageAccessCounter(region())
        pac.observe(pa_of([0]))
        pac.registers.write("enable", 0)
        pac.observe(pa_of([0, 0, 0]))
        pac.registers.write("enable", 1)
        pac.observe(pa_of([0]))
        assert pac.counts()[0] == 2

    def test_wac_disable_midstream(self):
        wac = WordAccessCounter(region())
        wac.registers.write("enable", 0)
        wac.observe(pa_of([1]))
        assert wac.total_accesses == 0

    def test_controller_detach_midstream(self):
        ctrl = CxlController(region())
        pac = PageAccessCounter(region())
        ctrl.attach(pac)
        ctrl.serve(pa_of([0]))
        ctrl.detach(pac)
        ctrl.serve(pa_of([0]))
        assert pac.total_accesses == 1

    def test_pac_observe_empty_batch(self):
        pac = PageAccessCounter(region())
        pac.observe(np.array([], dtype=np.uint64))
        assert pac.total_accesses == 0

    def test_wac_window_move_between_batches(self):
        wac = WordAccessCounter(region(64), window_bytes=4 * PAGE_SIZE)
        wac.observe(pa_of([1]))
        wac.set_monitor_window(BASE + 8 * PAGE_SIZE)
        wac.observe(pa_of([9]))
        assert wac.total_accesses == 1  # counters cleared at the move
        assert wac.counts().sum() == 1


class TestMigrationHostileInputs:
    def make(self):
        mem = TieredMemory(ddr_pages=4, cxl_pages=16, num_logical_pages=8)
        mem.allocate_all(NodeKind.CXL)
        return mem, MigrationEngine(mem)

    def test_promote_empty(self):
        _, eng = self.make()
        assert eng.promote(np.array([], dtype=np.int64)) == 0

    def test_all_pinned_batch(self):
        mem, eng = self.make()
        eng.pin(np.arange(8), PinReason.DMA)
        assert eng.promote(np.arange(8)) == 0
        assert mem.nr_pages(NodeKind.DDR) == 0
        assert eng.stats.rejected == 8

    def test_promote_more_than_ddr_and_footprint(self):
        """Requesting promotion of everything with a tiny DDR: fills
        DDR, demotes nothing it just promoted, never deadlocks."""
        mem, eng = self.make()
        promoted = eng.promote(np.arange(8))
        assert promoted == 4  # DDR capacity
        assert mem.nr_pages(NodeKind.DDR) == 4

    def test_demote_everything_when_cxl_full_is_bounded(self):
        mem = TieredMemory(ddr_pages=8, cxl_pages=4, num_logical_pages=8)
        # Manually place: 4 on CXL (fills it), 4 on DDR.
        for i in range(8):
            node = NodeKind.CXL if i < 4 else NodeKind.DDR
            pfn = mem.node(node).allocate_frame()
            mem._frame_of[i] = pfn
            mem._node_of[i] = mem._NODE_CODE[node]
        eng = MigrationEngine(mem)
        # CXL is full: demotion must stop without raising.
        assert eng.demote(np.arange(4, 8)) == 0


class TestElectorEdgeCases:
    def sample(self, **kw):
        defaults = dict(nr_pages_ddr=10, nr_pages_cxl=10, bw_ddr=100.0,
                        bw_cxl=100.0, ddr_free_pages=0)
        defaults.update(kw)
        return MonitorSample(**defaults)

    def test_zero_bandwidth_sample(self):
        e = Elector()
        d = e.step(0.0, self.sample(bw_ddr=0.0, bw_cxl=0.0))
        assert d is not None  # no division errors

    def test_always_first_false(self):
        e = Elector(always_first=False)
        d = e.step(0.0, self.sample())
        assert not d.migrate

    def test_epsilon_suppresses_noise(self):
        e = Elector(improvement_epsilon=0.05)
        e.step(0.0, self.sample(bw_ddr=100.0, bw_cxl=10.0))
        # Tiny rise in DDR share: below epsilon, DDR denser -> skip.
        d = e.step(100.0, self.sample(bw_ddr=100.5, bw_cxl=10.0))
        assert not d.migrate

    def test_free_ddr_always_migrates(self):
        e = Elector()
        e.step(0.0, self.sample())
        d = e.step(100.0, self.sample(bw_ddr=1.0, bw_cxl=0.5,
                                      ddr_free_pages=5))
        assert d.migrate


class TestSimulationEdgeCases:
    def test_single_epoch_run(self):
        from repro.sim import SimConfig, run_policy
        from repro.workloads import uniform_workload

        cfg = SimConfig(total_accesses=1000, chunk_size=65_536,
                        ddr_pages=16, cxl_pages=64, checkpoints=1)
        result = run_policy(uniform_workload(footprint_pages=32, seed=0), "m5-hpt", cfg)
        assert result.execution_time_s > 0

    def test_footprint_equal_to_ddr(self):
        """Everything fits in DDR: migration converges to all-DDR."""
        from repro.sim import SimConfig, run_policy
        from repro.workloads import uniform_workload

        cfg = SimConfig(total_accesses=200_000, chunk_size=20_000,
                        ddr_pages=64, cxl_pages=64, checkpoints=1)
        result = run_policy(
            uniform_workload(footprint_pages=64, seed=0), "m5-hpt", cfg
        )
        assert result.nr_pages_cxl == 0
