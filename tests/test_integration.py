"""Cross-module integration scenarios.

These tests run the whole stack — workload → tiered memory → CXL
controller → trackers/policies → migration → performance model — and
check emergent behaviours that no single module owns.
"""

import numpy as np

from repro.core.manager import HPT_DRIVEN, Nominator
from repro.memory.tiers import NodeKind
from repro.sim import M5Options, SimConfig, Simulation, run_policy
from repro.workloads import (
    SyntheticParams,
    SyntheticWorkload,
    WorkloadSpec,
    build,
    uniform_workload,
)
from repro.workloads.phases import RotatingWorkingSet
from repro.workloads.wordmap import WordDensityProfile
from repro.workloads.zipf import mixture_popularity


def cfg(**kw):
    defaults = dict(
        total_accesses=400_000, chunk_size=16_384, ddr_pages=1024,
        cxl_pages=8192, checkpoints=1, trace_subsample=64.0,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        a = run_policy(build("roms", seed=7), "m5-hpt", cfg())
        b = run_policy(build("roms", seed=7), "m5-hpt", cfg())
        assert a.execution_time_s == b.execution_time_s
        assert a.promoted == b.promoted
        assert a.hot_pfns == b.hot_pfns

    def test_different_seeds_differ(self):
        a = run_policy(build("roms", seed=7), "m5-hpt", cfg())
        b = run_policy(build("roms", seed=8), "m5-hpt", cfg())
        assert a.execution_time_s != b.execution_time_s


class TestConservation:
    def test_frames_conserved_through_full_run(self):
        sim = Simulation(build("mcf", seed=1), cfg(), policy="damon")
        sim.run()
        n = sim.workload.spec.footprint_pages
        frames = sim.memory.frame_map[:n]
        assert len(np.unique(frames)) == n
        assert sim.memory.ddr.used_pages + sim.memory.cxl.used_pages == n

    def test_pac_plus_ddr_accounting_covers_all_accesses(self):
        """Every access lands on exactly one node; PAC sees exactly
        the CXL share."""
        config = cfg()
        sim = Simulation(build("mcf", seed=1), config, policy="m5-hpt")
        sim.run()
        total = (
            sim.memory.ddr.accesses_total + sim.memory.cxl.accesses_total
        )
        assert total == config.total_accesses
        assert sim.pac.total_accesses == sim.memory.cxl.accesses_total


class TestMigrationMovesTheRightPages:
    def test_hot_pages_end_up_on_ddr(self):
        """After an M5 run on a strongly skewed workload, the hottest
        pages are DDR-resident."""
        spec = WorkloadSpec(name="skewed", footprint_pages=2048, mpki=30.0)
        params = SyntheticParams(
            popularity=mixture_popularity(2048, [(0.05, 200.0), (0.95, 1.0)]),
            word_density=WordDensityProfile.dense(),
        )
        wl = SyntheticWorkload(spec, params, seed=1)
        sim = Simulation(wl, cfg(ddr_pages=256), policy="m5-hpt")
        sim.run()
        # The hot tier is pages [0, 102); most of DDR should hold them.
        hot_tier = set(range(102))
        on_ddr = set(sim.memory.pages_on(NodeKind.DDR).tolist())
        assert len(on_ddr & hot_tier) > 70

    def test_no_migration_policy_never_moves(self):
        result = run_policy(build("mcf", seed=1), "none", cfg())
        assert result.promoted == 0
        assert result.nr_pages_ddr == 0


class TestPhaseAdaptivity:
    def test_m5_follows_working_set_shift(self):
        """When the hot window rotates, M5 promotes pages from the new
        window (tracked via promotions after the shift)."""
        n = 2048
        spec = WorkloadSpec(name="shift", footprint_pages=n, mpki=30.0)
        pop = np.full(n, 1.0 / n)
        params = SyntheticParams(
            popularity=pop,
            word_density=WordDensityProfile.dense(),
            phase_model=RotatingWorkingSet(
                pop, window_fraction=0.1, boost=50.0,
                accesses_per_phase=100_000, stride_fraction=2.0,
            ),
        )
        wl = SyntheticWorkload(spec, params, seed=2)
        sim = Simulation(wl, cfg(total_accesses=400_000, ddr_pages=256),
                         policy="m5-hpt")
        result = sim.run()
        # Promotions must keep happening across phases, not just once.
        assert result.promoted > 300

    def test_elector_throttles_when_cxl_cold(self):
        """A workload whose traffic is entirely DDR-resident after the
        fill leaves the Elector with nothing to do."""
        wl = uniform_workload(footprint_pages=256, seed=3)
        sim = Simulation(wl, cfg(ddr_pages=512), policy="m5-hpt")
        sim.run()
        # Footprint fits in DDR: after the fill, migration stops.
        assert sim.memory.nr_pages(NodeKind.CXL) == 0
        assert sim.engine.stats.demoted == 0


class TestHptDrivenDensity:
    def test_density_mask_populated_from_hwt(self):
        """HPT-driven Nominator sees word-level masks from real HWT
        traffic."""
        wl = build("roms", seed=1)
        opts = M5Options(nominator_mode=HPT_DRIVEN, min_hot_words=4)
        sim = Simulation(wl, cfg(), policy="m5-hpt+hwt", m5_options=opts)
        assert isinstance(sim._manager.nominator, Nominator)
        result = sim.run()
        assert result.promoted > 0


class TestOverheadOrdering:
    def test_identification_cost_ordering(self):
        """ANB (faults+shootdowns) costs more CPU than M5 (a few MMIO
        reads); DAMON sits in between or below ANB."""
        results = {}
        for policy in ("anb", "damon", "m5-hpt"):
            results[policy] = run_policy(
                build("mcf", seed=1), policy, cfg(migrate=False)
            )
        assert results["m5-hpt"].overhead_time_s < results["damon"].overhead_time_s
        assert results["m5-hpt"].overhead_time_s < results["anb"].overhead_time_s


class TestSeedRobustness:
    def test_headline_orderings_hold_across_seeds(self):
        """The paper's central orderings — M5 identifies hotter pages
        than ANB/DAMON, at lower overhead — must not be a seed
        artifact."""
        for seed in (3, 11):
            ratios = {}
            overheads = {}
            for policy in ("anb", "damon", "m5-hpt"):
                result = run_policy(
                    build("roms", seed=seed), policy,
                    cfg(migrate=False, total_accesses=300_000),
                )
                ratios[policy] = result.access_count_ratio
                overheads[policy] = result.overhead_time_s
            assert ratios["m5-hpt"] > ratios["anb"], seed
            assert ratios["m5-hpt"] > ratios["damon"], seed
            assert overheads["m5-hpt"] < overheads["anb"], seed


class TestLatencyModel:
    def test_all_ddr_run_faster_than_all_cxl(self):
        wl_spec = dict(footprint_pages=512, seed=4)
        slow = run_policy(uniform_workload(**wl_spec), "none",
                          cfg(ddr_pages=1024))
        # Same workload, but promote everything via m5 (fits in DDR).
        fast = run_policy(uniform_workload(**wl_spec), "m5-hpt",
                          cfg(ddr_pages=1024))
        assert fast.app_time_s < slow.app_time_s
