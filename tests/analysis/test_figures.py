"""Tests for the CSV figure exporters."""

import csv

import numpy as np

from repro.analysis import (
    AccessCdf,
    export_cdf_curves,
    export_ratio_bars,
    export_series,
    export_sparsity,
    write_csv,
)
from repro.analysis.sparsity import SparsityProfile


def read(path):
    with open(path) as fh:
        return list(csv.reader(fh))


class TestWriteCsv:
    def test_basic(self, tmp_path):
        p = write_csv(tmp_path / "x.csv", ["a", "b"], [[1, 2], [3, 4]])
        rows = read(p)
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2"]

    def test_creates_directories(self, tmp_path):
        p = write_csv(tmp_path / "deep" / "x.csv", ["a"], [[1]])
        assert p.exists()


class TestExporters:
    def test_ratio_bars(self, tmp_path):
        p = export_ratio_bars(
            tmp_path / "fig3.csv",
            {"mcf": {"anb": 0.4, "damon": 0.5}, "roms": {"anb": 0.1}},
        )
        rows = read(p)
        assert rows[0] == ["bench", "anb", "damon"]
        assert rows[2][2] == ""  # roms has no damon value

    def test_sparsity(self, tmp_path):
        prof = SparsityProfile("redis", {4: 0.4, 8: 0.6, 16: 0.8,
                                         32: 0.9, 48: 0.95}, 100)
        p = export_sparsity(tmp_path / "fig4.csv", {"redis": prof})
        rows = read(p)
        assert rows[0][0] == "bench"
        assert float(rows[1][3]) == 0.8

    def test_cdf_curves(self, tmp_path):
        cdf = AccessCdf.from_counts("x", np.array([1, 10, 100, 1000]))
        p = export_cdf_curves(tmp_path / "fig10.csv", {"x": cdf},
                              log10_grid=[0.0, 1.0, 2.0, 3.0])
        rows = read(p)
        assert rows[0] == ["log10_count", "x"]
        assert float(rows[-1][1]) == 1.0

    def test_series(self, tmp_path):
        p = export_series(
            tmp_path / "fig11.csv",
            {"mcf": {1: 0.99, 2: 0.9}, "roms": {1: 0.97}},
            x_label="processes",
        )
        rows = read(p)
        assert rows[0] == ["processes", "mcf", "roms"]
        assert rows[2][2] == ""
