"""Tests for the benchmark profile report."""

import pytest

from repro.analysis.report import (
    profile_benchmark,
    render_markdown,
)
from repro.core.manager.nominator import HPT_DRIVEN, HPT_ONLY, HWT_DRIVEN
from repro.sim import SimConfig


@pytest.fixture(scope="module")
def redis_profile():
    cfg = SimConfig(total_accesses=300_000, migrate=False, checkpoints=2)
    return profile_benchmark("redis", config=cfg)


class TestProfileBenchmark:
    def test_fields_populated(self, redis_profile):
        assert redis_profile.bench == "redis"
        assert redis_profile.cdf.counts.size > 0
        assert redis_profile.sparsity.pages_observed > 0
        assert set(redis_profile.policy_ratios) == {"anb", "damon"}

    def test_redis_recommended_hwt(self, redis_profile):
        """Guideline 4: sparse-page apps get the HWT-driven mode."""
        assert redis_profile.recommended_nominator == HWT_DRIVEN

    def test_dense_app_recommended_hpt_only(self):
        cfg = SimConfig(total_accesses=300_000, migrate=False, checkpoints=2)
        profile = profile_benchmark("pr", config=cfg)
        assert profile.recommended_nominator == HPT_ONLY

    def test_mixed_app_recommended_hpt_driven(self):
        cfg = SimConfig(total_accesses=300_000, migrate=False, checkpoints=2)
        profile = profile_benchmark("roms", config=cfg)
        assert profile.recommended_nominator == HPT_DRIVEN


class TestRenderMarkdown:
    def test_sections_present(self, redis_profile):
        text = render_markdown(redis_profile)
        for heading in ("# Profile: redis", "## Page heat", "## Word sparsity",
                        "## CPU-driven identification quality",
                        "## Recommendation"):
            assert heading in text

    def test_ratio_rows_present(self, redis_profile):
        text = render_markdown(redis_profile)
        assert "| anb |" in text
        assert "| damon |" in text


class TestCliReport:
    def test_report_to_file(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.md"
        rc = main([
            "report", "--bench", "mcf", "--accesses", "150000",
            "--output", str(out),
        ])
        assert rc == 0
        assert out.read_text().startswith("# Profile: mcf")
