"""Tests for the timeline pivot helpers, including migration.* events."""

import pytest

from repro.analysis.timeline import (
    migration_outcome_totals,
    migration_outcomes,
    migration_totals,
    occupancy_series,
    pivot,
    timeline_frame,
    timeline_series,
)


def epoch_event(epoch, **fields):
    e = {"stage": "epoch", "epoch": epoch, "t_s": float(epoch)}
    e.update(fields)
    return e


def mig_event(stage, epoch, **fields):
    e = {"stage": stage, "epoch": epoch, "t_s": float(epoch)}
    e.update(fields)
    return e


def async_timeline():
    """Two epochs of migration.* events as the async engine publishes them."""
    return [
        epoch_event(1, promoted=2, demoted=0),
        mig_event("migration.enqueue", 1, enqueued=10, dropped_full=1, pending=8),
        mig_event("migration.commit", 1, committed=5, promoted=4, demoted=1),
        mig_event("migration.abort", 1, aborted=3, dirty=1, injected=2, enomem=0),
        mig_event("migration.retry", 1, retried=3, dropped=0),
        epoch_event(2, promoted=0, demoted=1),
        mig_event("migration.enqueue", 2, enqueued=4, dropped_full=0, pending=3),
        mig_event("migration.commit", 2, committed=6, promoted=6, demoted=0),
        mig_event("migration.retry", 2, retried=0, dropped=2),
    ]


class TestBasicPivots:
    def test_series_skips_other_stages(self):
        tl = async_timeline()
        assert timeline_series(tl, "promoted") == [2.0, 0.0]

    def test_frame_equal_length_columns(self):
        frame = timeline_frame(async_timeline())
        assert len(frame["promoted"]) == len(frame["demoted"]) == 2

    def test_occupancy_empty_timeline(self):
        assert occupancy_series([]) == {
            "epoch": [], "t_s": [], "nr_pages_ddr": [], "nr_pages_cxl": [],
        }

    def test_migration_totals_sums(self):
        tl = [epoch_event(1, promoted=2, demoted=1, migration_us=5.0,
                          overhead_us=1.0),
              epoch_event(2, promoted=3, demoted=0, migration_us=7.0,
                          overhead_us=2.0)]
        totals = migration_totals(tl)
        assert totals["promoted"] == 5.0
        assert totals["migration_us"] == 12.0


class TestPivot:
    def test_sum_accumulates_within_epoch(self):
        tl = [mig_event("s", 1, n=2), mig_event("s", 1, n=3),
              mig_event("s", 2, n=5)]
        frame = pivot(tl, (("n", "s", "n"),))
        assert frame == {"epoch": [1.0, 2.0], "n": [5.0, 5.0]}

    def test_last_keeps_final_value(self):
        tl = [mig_event("s", 1, depth=8), mig_event("s", 1, depth=3)]
        frame = pivot(tl, (("depth", "s", "depth", "last"),))
        assert frame["depth"] == [3.0]

    def test_absent_field_reads_zero(self):
        tl = [mig_event("a", 1, x=1), mig_event("b", 2, y=2)]
        frame = pivot(tl, (("x", "a", "x"), ("y", "b", "y")))
        assert frame["x"] == [1.0, 0.0]
        assert frame["y"] == [0.0, 2.0]

    def test_no_matching_stage_returns_empty(self):
        assert pivot([epoch_event(1, n=1)], (("n", "other", "n"),)) == {}

    def test_empty_timeline_returns_empty(self):
        assert pivot([], (("n", "s", "n"),)) == {}

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError):
            pivot([], (("n", "s", "n", "mean"),))

    def test_epochs_sorted_regardless_of_event_order(self):
        tl = [mig_event("s", 3, n=1), mig_event("s", 1, n=2)]
        frame = pivot(tl, (("n", "s", "n"),))
        assert frame["epoch"] == [1.0, 3.0]


class TestMigrationOutcomes:
    def test_instant_mode_empty(self):
        """No migration.* events (instant mode) -> empty dict."""
        assert migration_outcomes([epoch_event(1, promoted=2)]) == {}

    def test_columns_align_per_epoch(self):
        frame = migration_outcomes(async_timeline())
        assert frame["epoch"] == [1.0, 2.0]
        assert frame["committed"] == [5.0, 6.0]
        assert frame["aborted"] == [3.0, 0.0]
        assert frame["aborted_dirty"] == [1.0, 0.0]
        assert frame["aborted_injected"] == [2.0, 0.0]
        assert frame["retried"] == [3.0, 0.0]
        assert frame["dropped_retries"] == [0.0, 2.0]
        assert frame["pending"] == [8.0, 3.0]

    def test_missing_event_kind_fills_zero(self):
        """Epoch 2 published no abort event; its row must still align."""
        frame = migration_outcomes(async_timeline())
        n = len(frame["epoch"])
        assert all(len(col) == n for col in frame.values())

    def test_epochs_come_out_sorted(self):
        tl = list(reversed(async_timeline()))
        frame = migration_outcomes(tl)
        assert frame["epoch"] == [1.0, 2.0]

    def test_totals(self):
        totals = migration_outcome_totals(async_timeline())
        assert totals["enqueued"] == 14.0
        assert totals["dropped_full"] == 1.0
        assert totals["committed"] == 11.0
        assert totals["aborted"] == 3.0
        assert totals["epochs_active"] == 2.0
        assert totals["peak_pending"] == 8.0

    def test_totals_empty_timeline(self):
        totals = migration_outcome_totals([])
        assert totals["committed"] == 0.0
        assert totals["epochs_active"] == 0.0
        assert totals["peak_pending"] == 0.0
