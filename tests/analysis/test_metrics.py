"""Tests for the analysis metrics: ratio, sparsity, CDF, tables."""

import numpy as np
import pytest

from repro.analysis import (
    AccessCdf,
    RatioReport,
    best_cpu_driven,
    breakeven_migration_accesses,
    dense_page_fraction,
    figure4_row,
    from_trace,
    k_access_count,
    migration_worthwhile,
    ratio,
    render_series,
    render_table,
    summarize,
    tracker_ratio,
)
from repro.cxl.pac import PageAccessCounter
from repro.memory.address import PAGE_SIZE, AddressRegion


def pac_with_counts(counts):
    region = AddressRegion(0, len(counts) * PAGE_SIZE)
    pac = PageAccessCounter(region)
    pages = np.repeat(np.arange(len(counts)), counts)
    pac.observe(pages.astype(np.uint64) << np.uint64(12))
    return pac


class TestRatioMetric:
    def test_k_access_count(self):
        pac = pac_with_counts([10, 5, 1])
        assert k_access_count(pac, [0, 2]) == 11

    def test_ratio_perfect(self):
        pac = pac_with_counts([10, 5, 1])
        assert ratio(pac, [0, 1]) == pytest.approx(1.0)

    def test_ratio_warm(self):
        pac = pac_with_counts([10, 5, 1])
        assert ratio(pac, [2]) == pytest.approx(0.1)

    def test_ratio_dedups(self):
        pac = pac_with_counts([10, 5, 1])
        assert ratio(pac, [0, 0, 0]) == pytest.approx(1.0)

    def test_ratio_k_cap(self):
        pac = pac_with_counts([10, 5, 1])
        assert ratio(pac, [2, 0], k_cap=1) == pytest.approx(0.1)

    def test_ratio_empty(self):
        pac = pac_with_counts([10])
        assert ratio(pac, []) == 0.0

    def test_tracker_ratio(self):
        truth = {1: 10, 2: 5, 3: 1}
        assert tracker_ratio(truth, [1, 2], k=2) == pytest.approx(1.0)
        assert tracker_ratio(truth, [3, 2], k=2) == pytest.approx(6 / 15)
        assert tracker_ratio(truth, [], k=2) == 0.0

    def test_report_and_best(self):
        anb = summarize("x", "anb", [0.1, 0.3])
        damon = summarize("x", "damon", [0.2, 0.4])
        assert anb.mean == pytest.approx(0.2)
        assert anb.min == pytest.approx(0.1)
        assert anb.max == pytest.approx(0.3)
        assert best_cpu_driven([anb, damon]).policy == "damon"
        with pytest.raises(ValueError):
            best_cpu_driven([])

    def test_empty_report(self):
        r = RatioReport("x", "anb", ())
        assert r.mean == 0.0


class TestSparsityMetric:
    def test_from_trace(self):
        # page 0: 4 words; page 1: 64 words
        pa = [w * 64 for w in range(4)] + [4096 + w * 64 for w in range(64)]
        prof = from_trace("t", np.array(pa, dtype=np.uint64))
        assert prof.at(4) == pytest.approx(0.5)
        assert prof.at(48) == pytest.approx(0.5)
        assert prof.pages_observed == 2

    def test_dense_fraction(self):
        pa = [4096 + w * 64 for w in range(64)]
        prof = from_trace("t", np.array(pa, dtype=np.uint64))
        assert dense_page_fraction(prof) == pytest.approx(1.0)

    def test_figure4_row(self):
        pa = [w * 64 for w in range(4)]
        prof = from_trace("t", np.array(pa, dtype=np.uint64))
        row = figure4_row(prof)
        assert len(row) == 5
        assert row[0] == pytest.approx(1.0)

    def test_classification_flags(self):
        sparse = from_trace("s", np.array([0, 64], dtype=np.uint64))
        assert sparse.mostly_sparse and not sparse.mostly_dense


class TestCdfMetric:
    def cdf(self):
        counts = np.concatenate([
            np.full(90, 10.0), np.full(9, 100.0), np.full(1, 1000.0),
        ])
        return AccessCdf.from_counts("x", counts)

    def test_percentiles(self):
        cdf = self.cdf()
        assert cdf.percentile(50) == pytest.approx(10.0)
        assert cdf.percentile(99) == pytest.approx(100.0, rel=0.2)

    def test_hotness_ratio(self):
        cdf = self.cdf()
        assert cdf.hotness_ratio(95) == pytest.approx(10.0, rel=0.2)

    def test_zero_counts_dropped(self):
        cdf = AccessCdf.from_counts("x", np.array([0, 0, 5]))
        assert cdf.counts.size == 1

    def test_gini_bounds(self):
        flat = AccessCdf.from_counts("f", np.full(100, 7.0))
        skew = AccessCdf.from_counts("s", np.array([1.0] * 99 + [1e6]))
        assert flat.gini() == pytest.approx(0.0, abs=0.01)
        assert skew.gini() > 0.9

    def test_cdf_points_monotone(self):
        x, f = self.cdf().cdf_points()
        assert (np.diff(f) >= 0).all()
        assert f[-1] == pytest.approx(1.0)

    def test_empty_cdf(self):
        cdf = AccessCdf.from_counts("e", np.array([]))
        assert cdf.percentile(50) == 0.0
        assert cdf.gini() == 0.0

    def test_breakeven(self):
        assert breakeven_migration_accesses() == pytest.approx(317.6, abs=0.1)

    def test_migration_worthwhile(self):
        hot = AccessCdf.from_counts(
            "h", np.concatenate([np.full(50, 10.0), np.full(50, 10_000.0)])
        )
        flat = AccessCdf.from_counts("f", np.full(100, 10.0))
        assert migration_worthwhile(hot)
        assert not migration_worthwhile(flat)


class TestTables:
    def test_render_table(self):
        out = render_table("T", ["a", "b"], [[1, 2.5], ["x", None]])
        assert "T" in out
        assert "2.500" in out
        assert "-" in out  # None cell

    def test_render_series(self):
        out = render_series("S", [("k", 1.0)])
        assert "S" in out and "k" in out
