"""Figure 11: accuracy of the 32K-entry CM-Sketch tracker as the
working-set size grows.

The paper co-runs x1..x64 instances of mcf/roms/fotonik3d/cactuBSSN,
each in a disjoint physical range (up to ~27GB for 32 processes), and
shows the tracker's preciseness decreasing *gracefully* as address
cardinality grows.

We reproduce it by interleaving the traces of N instances (each a
reseeded copy of the benchmark, offset to a disjoint page range) and
scoring the tracker against exact counts of the combined stream.
"""

import numpy as np
import pytest

from repro.analysis import tracker_ratio
from repro.core.trackers import CmSketchTopK
from repro.workloads import SCALABILITY_SET, build

from common import emit_table, once

PROCESS_COUNTS = (1, 2, 4, 8, 16, 32, 64)
#: Per-instance footprint scale; x64 reaches ~640K pages of combined
#: cardinality against the 32K-counter sketch.
PAGES_PER_GB = 1536
ACCESSES_PER_INSTANCE = 120_000
CHUNK = 65_536
K = 5


def combined_trace(bench, num_processes):
    parts = []
    for i in range(num_processes):
        wl = build(bench, seed=100 + i, pages_per_gb=PAGES_PER_GB)
        trace = wl.trace(ACCESSES_PER_INSTANCE)
        offset = np.uint64(i * wl.spec.footprint_pages * 4096)
        parts.append(trace + offset)
    stacked = np.stack(
        [p[: min(len(q) for q in parts)] for p in parts], axis=1
    ).reshape(-1)
    return stacked


def score(trace):
    pages = (trace >> np.uint64(12)).astype(np.int64)
    truth = {int(k): int(v) for k, v in zip(*np.unique(pages, return_counts=True))}
    tracker = CmSketchTopK(K, num_counters=32 * 1024, granularity="page")
    identified, seen = [], set()
    for start in range(0, len(trace), CHUNK):
        tracker.observe(trace[start : start + CHUNK])
        for key, _ in tracker.query():
            if key not in seen:
                seen.add(key)
                identified.append(key)
    return tracker_ratio(truth, identified, k=len(identified))


def run_experiment():
    rows = []
    for bench in SCALABILITY_SET:
        row = {"bench": bench}
        for n in PROCESS_COUNTS:
            row[f"x{n}"] = score(combined_trace(bench, n))
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def fig11_rows():
    return run_experiment()


def check_graceful_degradation(rows):
    """Accuracy decays with footprint but never collapses."""
    for r in rows:
        assert r["x1"] > 0.75, r["bench"]
        assert r["x64"] >= 0.25, r["bench"]
        # No cliff: each doubling loses a bounded amount.
        values = [r[f"x{n}"] for n in PROCESS_COUNTS]
        drops = [a - b for a, b in zip(values, values[1:])]
        assert max(drops) < 0.45, r["bench"]


def check_monotone_trend(rows):
    """x64 never beats x1 (more cardinality, more collisions)."""
    for r in rows:
        assert r["x64"] <= r["x1"] + 0.05, r["bench"]


def test_fig11_regenerate(benchmark, fig11_rows):
    rows = once(benchmark, lambda: fig11_rows)
    emit_table(
        "fig11_scalability",
        "Figure 11 — CM-Sketch-32K accuracy vs co-running instances",
        ["bench"] + [f"x{n}" for n in PROCESS_COUNTS],
        [[r["bench"]] + [r[f"x{n}"] for n in PROCESS_COUNTS] for r in rows],
    )
    check_graceful_degradation(rows)
    check_monotone_trend(rows)


def test_graceful_degradation(fig11_rows):
    check_graceful_degradation(fig11_rows)


def test_monotone_trend(fig11_rows):
    check_monotone_trend(fig11_rows)
