"""Shared plumbing for the experiment benchmarks.

Each ``benchmarks/test_*`` module regenerates one table or figure of
the paper.  Experiments run once (``benchmark.pedantic`` with a single
round — they are deterministic simulations, not microbenchmarks), the
regenerated rows/series are printed AND written to
``benchmarks/results/<name>.txt``, and the paper's qualitative shape
is asserted.
"""

from __future__ import annotations

import os

from repro.analysis import render_series, render_table
from repro.sim import SimConfig
from repro.sim.sweep import normalized

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def ratio_config(total_accesses: int = 800_000, **kw) -> SimConfig:
    """Identification-only config used by the access-count-ratio
    experiments (Figures 3 and 8)."""
    defaults = dict(
        total_accesses=total_accesses,
        chunk_size=65_536,
        migrate=False,
        checkpoints=10,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


def end_to_end_config(total_accesses: int = 1_500_000, **kw) -> SimConfig:
    """Migration-enabled config for the Figure 9 runs.

    ``trace_subsample = 64`` stretches the simulated wall-clock so the
    one-time DDR fill is amortised the way the paper's minutes-long
    runs amortise it.
    """
    defaults = dict(
        total_accesses=total_accesses,
        chunk_size=16_384,
        trace_subsample=64.0,
        checkpoints=1,
        migration_batch=512,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text)


def emit_table(name, title, headers, rows, precision=3, col_width=None):
    emit(name, render_table(title, headers, rows, precision, col_width))


def emit_series(name, title, pairs, precision=3):
    emit(name, render_series(title, pairs, precision))


def normalized_score(base, result) -> float:
    """Figure 9's metric: performance normalised to no-migration
    (inverse p99 for latency-sensitive workloads, §7.2).  Delegates
    to the sweep module's checked implementation."""
    return normalized(base, result)


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
