"""Extension (§9 discussion): M5 + Intel Flat Memory Mode synergy.

The paper argues IFMM (DDR as an exclusive word-level cache of CXL)
removes page-migration costs for *sparse* hot pages but is limited by
its one-to-one address mapping, so when CXL is larger than DDR "M5 can
be synergistically used with IFMM ... IFMM can migrate hot words in
sparse pages to DDR DRAM while M5 can migrate hot dense pages."

Setup: a Redis-style sparse workload with CXL twice the size of DDR.

* **no-migration** — everything served at CXL latency;
* **IFMM idealized** — all of DDR as word cache with modulo aliasing.
  *Not a real configuration*: IFMM's one-to-one mapping requires equal
  DDR and CXL capacities (§9), so this row is an infeasible upper
  reference for word-granular caching;
* **M5 alone** — page-granular migration of hot (possibly sparse)
  pages;
* **M5 + IFMM** — M5 gets most of DDR for dense hot pages; the rest of
  DDR serves as a word cache for the residual CXL traffic — the
  paper's proposed synergy, and a *feasible* deployment.

Asserted shape: all schemes beat no-migration, and on sparse traffic
the synergy beats page-granular M5 alone (word-level caching rescues
the sparse pages M5 would waste 4KB frames on).
"""

import numpy as np
import pytest

from repro.memory.address import PAGE_SHIFT, WORD_SHIFT
from repro.memory.ifmm import FlatMemoryMode
from repro.memory.tiers import CXL_LATENCY_NS, DDR_LATENCY_NS
from repro.sim import SimConfig, Simulation
from repro.workloads import build

from common import emit_series, once

TRACE_ACCESSES = 400_000
DDR_FRACTION_FOR_M5 = 0.8


def _mean_latency_flat(trace, ddr_words):
    fm = FlatMemoryMode(ddr_words=ddr_words, cxl_words=ddr_words * 4)
    words = (trace >> np.uint64(WORD_SHIFT)).astype(np.int64) % (ddr_words * 4)
    hits = fm.access(words)
    return fm.service_time_ns(hits) / len(trace)


def run_experiment():
    bench = "redis"
    wl = build(bench, seed=1)
    n_pages = wl.spec.footprint_pages
    ddr_pages = n_pages // 2  # CXL footprint is 2x DDR
    trace = wl.trace(TRACE_ACCESSES)

    # no migration
    lat_none = CXL_LATENCY_NS

    # IFMM alone: all DDR words cache the whole footprint's words.
    lat_ifmm = _mean_latency_flat(trace, ddr_pages * 64)

    # M5 alone: run the migration sim, then replay a fresh trace
    # against the final placement.
    cfg = SimConfig(total_accesses=TRACE_ACCESSES, chunk_size=16_384,
                    ddr_pages=ddr_pages, trace_subsample=64.0, checkpoints=1)
    sim = Simulation(build(bench, seed=1), cfg, policy="m5-hpt")
    sim.run()
    node_map = sim.memory.node_map
    pages = (trace >> np.uint64(PAGE_SHIFT)).astype(np.int64)
    on_ddr = node_map[pages] == 0
    lat_m5 = float(
        on_ddr.mean() * DDR_LATENCY_NS + (1 - on_ddr.mean()) * CXL_LATENCY_NS
    )

    # M5 + IFMM: M5 keeps 80% of DDR for dense pages; the remaining
    # 20% of DDR words caches the residual CXL word traffic.
    cfg2 = SimConfig(total_accesses=TRACE_ACCESSES, chunk_size=16_384,
                     ddr_pages=int(ddr_pages * DDR_FRACTION_FOR_M5),
                     trace_subsample=64.0, checkpoints=1)
    sim2 = Simulation(build(bench, seed=1), cfg2, policy="m5-hpt")
    sim2.run()
    node_map2 = sim2.memory.node_map
    on_ddr2 = node_map2[pages] == 0
    cxl_trace = trace[~on_ddr2]
    cache_words = (ddr_pages - cfg2.ddr_pages) * 64
    lat_cxl_part = _mean_latency_flat(cxl_trace, cache_words)
    lat_combo = float(
        on_ddr2.mean() * DDR_LATENCY_NS + (1 - on_ddr2.mean()) * lat_cxl_part
    )

    return {
        "no-migration": lat_none,
        "ifmm-idealized": lat_ifmm,
        "m5-alone": lat_m5,
        "m5+ifmm": lat_combo,
    }


@pytest.fixture(scope="module")
def latencies():
    return run_experiment()


def check_everyone_beats_no_migration(lat):
    for scheme in ("ifmm-idealized", "m5-alone", "m5+ifmm"):
        assert lat[scheme] < lat["no-migration"], scheme


def check_synergy(lat):
    """On sparse traffic the feasible combination beats page-granular
    M5 alone (the §9 argument)."""
    assert lat["m5+ifmm"] <= lat["m5-alone"] * 1.02


def test_ifmm_synergy_regenerate(benchmark, latencies):
    lat = once(benchmark, lambda: latencies)
    emit_series(
        "ext_ifmm_synergy",
        "Extension — mean access latency (ns) on sparse Redis traffic, "
        "CXL = 2x DDR",
        sorted(lat.items()),
        precision=1,
    )
    check_everyone_beats_no_migration(lat)
    check_synergy(lat)


def test_everyone_beats_no_migration(latencies):
    check_everyone_beats_no_migration(latencies)


def test_synergy(latencies):
    check_synergy(latencies)
