"""Extension: the adaptive f_default controller vs hand tuning.

§7 picks n and f_default by hand per benchmark ("we simply try a few
reasonable values ... and then choose the best", explicitly deferring
"any adaptive algorithm to determine f_default").  This bench runs the
MIMD auto-tuner (``AdaptiveElector``) against the fixed default and a
deliberately bad fixed setting, on three differently-shaped
benchmarks.

Asserted shape: the auto-tuner is never far from the fixed default
(it converges to a sane frequency on its own) and beats the bad
setting where aggressiveness hurts.
"""

import numpy as np
import pytest

from repro.core.manager import AdaptiveElector, power_fscale
from repro.sim import M5Options, SimConfig, Simulation
from repro.workloads import build

from common import emit_table, end_to_end_config, normalized_score, once

BENCHES = ("roms", "tc", "mcf")


def _run_with_elector(bench, elector=None, m5_options=None):
    sim = Simulation(build(bench, seed=1), end_to_end_config(),
                     policy="m5-hpt", m5_options=m5_options)
    if elector is not None:
        sim._manager.elector = elector
    return sim.run()


def run_experiment():
    rows = []
    for bench in BENCHES:
        base = Simulation(build(bench, seed=1), end_to_end_config(),
                          policy="none").run()
        fixed = _run_with_elector(bench)
        adaptive_elector = AdaptiveElector(
            f_default=1.0, fscale=power_fscale(4.0),
            min_period_s=1e-3, max_period_s=2.0,
        )
        adaptive = _run_with_elector(bench, elector=adaptive_elector)
        bad = _run_with_elector(
            bench, m5_options=M5Options(improvement_epsilon=-1.0, k_hpt=256)
        )
        rows.append({
            "bench": bench,
            "fixed": normalized_score(base, fixed),
            "adaptive": normalized_score(base, adaptive),
            "churny": normalized_score(base, bad),
            "f_final": adaptive_elector.f_default,
        })
    return rows


@pytest.fixture(scope="module")
def rows():
    return run_experiment()


def check_adaptive_close_to_hand_tuned(rows):
    for r in rows:
        assert r["adaptive"] >= r["fixed"] - 0.15, r["bench"]


def check_adaptive_beats_churny_setting(rows):
    mean_adaptive = np.mean([r["adaptive"] for r in rows])
    mean_churny = np.mean([r["churny"] for r in rows])
    assert mean_adaptive > mean_churny


def test_autotune_regenerate(benchmark, rows):
    result = once(benchmark, lambda: rows)
    emit_table(
        "ext_autotune",
        "Extension — AdaptiveElector vs fixed f_default "
        "(normalised performance; churny = no dead band)",
        ["bench", "fixed", "adaptive", "churny", "f_final"],
        [[r["bench"], r["fixed"], r["adaptive"], r["churny"], r["f_final"]]
         for r in result],
    )
    check_adaptive_close_to_hand_tuned(result)
    check_adaptive_beats_churny_setting(result)


def test_adaptive_close_to_hand_tuned(rows):
    check_adaptive_close_to_hand_tuned(rows)


def test_adaptive_beats_churny_setting(rows):
    check_adaptive_beats_churny_setting(rows)
