"""§4.2: the performance cost of *identifying* hot pages.

The paper pins the kernel's migration processes to the application
core, disables migrate_pages(), and measures:

* kernel CPU cycles consumed by identification — ANB up to +487%
  (avg +159%), DAMON up to +733% (avg +277%) over the baseline kernel;
* Redis p99 latency: +34% (ANB) and +39% (DAMON);
* best-effort execution time: up to +4.6% (SSSP under ANB) and +8.6%
  (Liblinear under DAMON).

This harness runs identification-only (migrate = False) and reports
the same three views.  The baseline kernel time is modelled as a small
fixed share of application time (interrupts, timers, syscalls).
"""

import numpy as np
import pytest

from repro.sim import Simulation
from repro.workloads import MEMORY_INTENSIVE, build

from common import emit_table, once, ratio_config

#: Baseline kernel time as a share of application time: the paper's
#: benchmarks are user-space-bound, so the kernel's own share is tiny,
#: which is why identification inflates *kernel* cycles by hundreds of
#: percent while application time moves single digits.
BASELINE_KERNEL_SHARE = 0.02


def run_experiment():
    rows = []
    for bench in MEMORY_INTENSIVE:
        row = {"bench": bench}
        base = Simulation(build(bench, seed=1), ratio_config(), policy="none")
        base_result = base.run()
        kernel_baseline_s = base_result.app_time_s * BASELINE_KERNEL_SHARE
        for policy in ("anb", "damon"):
            sim = Simulation(build(bench, seed=1), ratio_config(), policy=policy)
            result = sim.run()
            row[f"{policy}_kernel_pct"] = (
                100.0 * result.overhead_time_s / kernel_baseline_s
            )
            row[f"{policy}_exec_pct"] = 100.0 * (
                result.execution_time_s / base_result.execution_time_s - 1.0
            )
            if base_result.p99_latency_us:
                row[f"{policy}_p99_pct"] = 100.0 * (
                    result.p99_latency_us / base_result.p99_latency_us - 1.0
                )
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def overhead_rows():
    return run_experiment()


def check_kernel_cycle_increase_is_large(rows):
    """Identification inflates kernel cycles by hundreds of percent."""
    anb = [r["anb_kernel_pct"] for r in rows]
    assert max(anb) > 100.0
    assert np.mean(anb) > 30.0


def check_execution_time_increase_is_single_digit(rows):
    """...while application execution time moves by single digits."""
    for r in rows:
        assert r["anb_exec_pct"] < 15.0, r["bench"]
        assert r["damon_exec_pct"] < 15.0, r["bench"]


def check_redis_p99_inflated(rows):
    """Redis p99: identification alone costs tail latency (paper:
    +34% ANB, +39% DAMON)."""
    redis = next(r for r in rows if r["bench"] == "redis")
    assert redis["anb_p99_pct"] > 3.0
    assert redis["damon_p99_pct"] > -5.0  # scanning cost visible or flat


def check_identification_not_free_anywhere(rows):
    for r in rows:
        assert r["anb_kernel_pct"] > 0
        assert r["damon_kernel_pct"] > 0


def test_sec42_regenerate(benchmark, overhead_rows):
    rows = once(benchmark, lambda: overhead_rows)
    emit_table(
        "sec42_overhead",
        "§4.2 — cost of identifying hot pages (no migration): kernel-"
        "cycle increase %, execution-time increase %",
        ["bench", "anb_kern%", "damon_kern%", "anb_exec%", "damon_exec%"],
        [
            [r["bench"], r["anb_kernel_pct"], r["damon_kernel_pct"],
             r["anb_exec_pct"], r["damon_exec_pct"]]
            for r in rows
        ],
        precision=1,
        col_width=13,
    )
    check_kernel_cycle_increase_is_large(rows)
    check_execution_time_increase_is_single_digit(rows)
    check_redis_p99_inflated(rows)
    check_identification_not_free_anywhere(rows)


def test_kernel_cycle_increase_is_large(overhead_rows):
    check_kernel_cycle_increase_is_large(overhead_rows)


def test_execution_time_increase_is_single_digit(overhead_rows):
    check_execution_time_increase_is_single_digit(overhead_rows)


def test_redis_p99_inflated(overhead_rows):
    check_redis_p99_inflated(overhead_rows)


def test_identification_not_free_anywhere(overhead_rows):
    check_identification_not_free_anywhere(overhead_rows)
