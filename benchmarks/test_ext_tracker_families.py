"""Extension: all three streaming-algorithm families side by side.

§5.1 categorises streaming top-K algorithms as counter-based
(Space-Saving — plus the Misra-Gries/Mithril variant), sketch-based
(CM-Sketch), and sampling-based (Sticky Sampling), then evaluates the
first two.  This bench completes the taxonomy at each family's
plausible hardware operating point:

* CM-Sketch at 32K SRAM counters (M5's choice);
* Space-Saving and Misra-Gries at the 2K-entry ASIC CAM limit;
* Sticky Sampling with a CAM-sized sample set.

Asserted shape: the sketch's feasibility advantage holds against
every alternative family, echoing the paper's §7.1 conclusion.
"""

import numpy as np
import pytest

from repro.analysis import tracker_ratio
from repro.core.trackers import (
    CmSketchTopK,
    MisraGriesTopK,
    SpaceSavingTopK,
    StickySamplingTopK,
)
from repro.workloads import build

from common import emit_table, once

PAGES_PER_GB = 4096
TRACE_ACCESSES = 800_000
CHUNK = 65_536
K = 5
BENCHES = ("mcf", "roms", "liblinear")


def _score(tracker, trace, truth):
    identified, seen = [], set()
    for start in range(0, len(trace), CHUNK):
        tracker.observe(trace[start : start + CHUNK])
        for key, _ in tracker.query():
            if key not in seen:
                seen.add(key)
                identified.append(key)
    return tracker_ratio(truth, identified, k=len(identified))


def run_experiment():
    rows = []
    for bench in BENCHES:
        wl = build(bench, seed=2, pages_per_gb=PAGES_PER_GB)
        trace = wl.trace(TRACE_ACCESSES)
        pages = (trace >> np.uint64(12)).astype(np.int64)
        truth = {
            int(k): int(v) for k, v in zip(*np.unique(pages, return_counts=True))
        }
        rows.append({
            "bench": bench,
            "cm_sketch_32k": _score(CmSketchTopK(K, num_counters=32 * 1024),
                                    trace, truth),
            "space_saving_2k": _score(SpaceSavingTopK(K, capacity=2048),
                                      trace, truth),
            "misra_gries_2k": _score(MisraGriesTopK(K, capacity=2048),
                                     trace, truth),
            "sticky_sampling": _score(StickySamplingTopK(K, seed=3),
                                      trace, truth),
        })
    return rows


@pytest.fixture(scope="module")
def family_rows():
    return run_experiment()


def check_sketch_operating_point_wins(rows):
    cms = np.mean([r["cm_sketch_32k"] for r in rows])
    for alt in ("space_saving_2k", "misra_gries_2k", "sticky_sampling"):
        assert cms >= np.mean([r[alt] for r in rows]) - 0.03, alt


def check_counter_family_consistent(rows):
    """Space-Saving and its Misra-Gries variant behave comparably at
    equal capacity."""
    ss = np.mean([r["space_saving_2k"] for r in rows])
    mg = np.mean([r["misra_gries_2k"] for r in rows])
    assert abs(ss - mg) < 0.35


def test_tracker_families_regenerate(benchmark, family_rows):
    rows = once(benchmark, lambda: family_rows)
    emit_table(
        "ext_tracker_families",
        "Extension — streaming families at feasible operating points "
        "(access-count ratio)",
        ["bench", "cms_32k", "ss_2k", "mg_2k", "sticky"],
        [
            [r["bench"], r["cm_sketch_32k"], r["space_saving_2k"],
             r["misra_gries_2k"], r["sticky_sampling"]]
            for r in rows
        ],
    )
    check_sketch_operating_point_wins(rows)
    check_counter_family_consistent(rows)


def test_sketch_operating_point_wins(family_rows):
    check_sketch_operating_point_wins(family_rows)


def test_counter_family_consistent(family_rows):
    check_counter_family_consistent(family_rows)
