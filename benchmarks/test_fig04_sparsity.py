"""Figure 4: probability that a 4KB page has at most {4, 8, 16, 32,
48} unique 64B words accessed, measured with WAC.

Paper claims reproduced here:

* Redis / Memcached / CacheLib are sparse: P(≤16 words) ≈ 0.86 /
  0.76 / 0.74;
* SPEC CPU pages are dense (≥75% of words accessed with probability
  0.87–0.92), with roms_r the partial exception;
* PageRank and SSSP are the dense GAP kernels (P(≥48 words) ≈ 0.98 /
  0.89), while Liblinear/BC/BFS/CC/TC show notable sparsity
  (P(≤16 words) ≈ 0.15 / 0.04 / 0.17 / 0.20 / 0.12).
"""

import pytest

from repro.analysis import from_wac
from repro.sim import Simulation
from repro.workloads import SPARSITY_SET, build

from common import emit_table, once, ratio_config

THRESHOLDS = (4, 8, 16, 32, 48)
#: Pages need enough accesses for their word pattern to be observable
#: in a scaled-down trace (the paper's minutes-long runs saturate).
MIN_ACCESSES = 192

PAPER_AT_16 = {"redis": 0.86, "memcached": 0.76, "cachelib": 0.74,
               "liblinear": 0.15, "bc": 0.04, "bfs": 0.17, "cc": 0.20,
               "tc": 0.12}


def run_experiment():
    profiles = {}
    for bench in SPARSITY_SET:
        sim = Simulation(
            build(bench, seed=1),
            ratio_config(total_accesses=3_000_000, checkpoints=1),
            policy="none",
            enable_wac=True,
        )
        sim.run()
        profiles[bench] = from_wac(bench, sim.wac, min_accesses=MIN_ACCESSES)
    return profiles


@pytest.fixture(scope="module")
def profiles():
    return run_experiment()


def check_kv_targets(profiles):
    for bench, target in PAPER_AT_16.items():
        assert profiles[bench].at(16) == pytest.approx(target, abs=0.08), bench


def check_kv_stores_mostly_sparse(profiles):
    """'most pages in these benchmarks are sparsely accessed'."""
    for bench in ("redis", "memcached", "cachelib"):
        assert profiles[bench].mostly_sparse


def check_spec_mostly_dense_except_roms(profiles):
    """P(≥75% of words accessed) in 0.87–0.92 for SPEC, roms apart."""
    for bench in ("mcf", "cactubssn", "fotonik3d"):
        dense = 1.0 - profiles[bench].at(48)
        assert dense > 0.80, bench
    assert 1.0 - profiles["roms"].at(48) < 0.70


def check_pr_and_sssp_densest_gap_kernels(profiles):
    assert 1.0 - profiles["pr"].at(48) > 0.90
    assert 1.0 - profiles["sssp"].at(48) > 0.80
    for bench in ("bc", "bfs", "cc", "tc"):
        assert profiles[bench].at(16) > profiles["pr"].at(16)


def check_profiles_monotone(profiles):
    for bench, prof in profiles.items():
        values = [prof.at(n) for n in THRESHOLDS]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:])), bench


def test_fig04_regenerate(benchmark, profiles):
    result = once(benchmark, lambda: profiles)
    emit_table(
        "fig04_sparsity",
        "Figure 4 — P(page has at most N unique 64B words accessed)",
        ["bench"] + [f"<={n}" for n in THRESHOLDS],
        [
            [b] + [result[b].at(n) for n in THRESHOLDS]
            for b in SPARSITY_SET
        ],
    )
    check_kv_targets(result)
    check_kv_stores_mostly_sparse(result)
    check_spec_mostly_dense_except_roms(result)
    check_pr_and_sssp_densest_gap_kernels(result)
    check_profiles_monotone(result)


@pytest.mark.parametrize("bench,target", sorted(PAPER_AT_16.items()))
def test_p_at_most_16_words_matches_paper(profiles, bench, target):
    assert profiles[bench].at(16) == pytest.approx(target, abs=0.08)


def test_kv_stores_mostly_sparse(profiles):
    check_kv_stores_mostly_sparse(profiles)


def test_spec_mostly_dense_except_roms(profiles):
    check_spec_mostly_dense_except_roms(profiles)


def test_pr_and_sssp_densest_gap_kernels(profiles):
    check_pr_and_sssp_densest_gap_kernels(profiles)


def test_profiles_monotone(profiles):
    check_profiles_monotone(profiles)
