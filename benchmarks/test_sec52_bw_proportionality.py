"""§5.2's Monitor hypothesis: with random page placement, a node's
consumed bandwidth is proportional to the pages allocated on it.

Paper measurement (mcf_r): nr_pages(DDR)/nr_pages(CXL) ratios of
2, 1, and 1/2 yield bw(DDR)/bw(CXL) ratios of 2.02, 0.919, and 0.571.
This validates bw_den() as a hot-page density signal (Guideline 1).
"""

import pytest

from repro.memory.address import PAGE_SHIFT
from repro.memory.tiers import NodeKind, TieredMemory
from repro.workloads import build

from common import emit_table, once

#: (target nr_pages ratio, paper-measured bw ratio)
CASES = [(2.0, 2.02), (1.0, 0.919), (0.5, 0.571)]


def run_case(page_ratio):
    wl = build("mcf", seed=3)
    n = wl.spec.footprint_pages
    ddr_fraction = page_ratio / (1.0 + page_ratio)
    mem = TieredMemory(ddr_pages=n, cxl_pages=n, num_logical_pages=n)
    mem.allocate_interleaved(ddr_fraction)
    mem.begin_epoch(1.0)
    for chunk in wl.chunks(1_000_000):
        mem.record_epoch_accesses(
            (chunk >> chunk.dtype.type(PAGE_SHIFT)).astype(int)
        )
    pages_ratio = mem.nr_pages(NodeKind.DDR) / mem.nr_pages(NodeKind.CXL)
    bw_ratio = mem.bw(NodeKind.DDR) / mem.bw(NodeKind.CXL)
    return pages_ratio, bw_ratio


def run_experiment():
    rows = []
    for target, paper_bw in CASES:
        pages_ratio, bw_ratio = run_case(target)
        rows.append(
            {"target": target, "pages_ratio": pages_ratio,
             "bw_ratio": bw_ratio, "paper_bw_ratio": paper_bw}
        )
    return rows


@pytest.fixture(scope="module")
def rows():
    return run_experiment()


def check_bw_tracks_pages(rows):
    """bw(node) ∝ nr_pages(node) under random placement."""
    for r in rows:
        assert r["bw_ratio"] == pytest.approx(r["pages_ratio"], rel=0.12)


def check_matches_paper_band(rows):
    for r in rows:
        assert r["bw_ratio"] == pytest.approx(r["paper_bw_ratio"], rel=0.20)


def test_sec52_regenerate(benchmark, rows):
    result = once(benchmark, lambda: rows)
    emit_table(
        "sec52_bw_proportionality",
        "§5.2 — bw(DDR)/bw(CXL) vs nr_pages(DDR)/nr_pages(CXL) for mcf "
        "(paper: 2.02 / 0.919 / 0.571)",
        ["target", "pages_ratio", "bw_ratio", "paper_bw_ratio"],
        [[r["target"], r["pages_ratio"], r["bw_ratio"], r["paper_bw_ratio"]]
         for r in result],
    )
    check_bw_tracks_pages(result)
    check_matches_paper_band(result)


def test_bw_tracks_pages(rows):
    check_bw_tracks_pages(rows)


def test_matches_paper_band(rows):
    check_matches_paper_band(rows)
