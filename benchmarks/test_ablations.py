"""Design-choice ablations called out in DESIGN.md.

1. **Nominator mode** (§5.2 Guidelines 3/4): HPT-driven nomination
   should help dense/sparse-mixed apps (roms, liblinear); HWT-driven
   should be competitive on sparse-page apps (redis).
2. **fscale exponent** (Algorithm 1): the paper tries n in 3..6; the
   choice is secondary.
3. **CM-Sketch depth H** (§7.1: sweeping H in [2, 16] has "only a
   secondary effect").
4. **Query period** (§7.1: preciseness increases as the interval
   decreases).
"""

import numpy as np
import pytest

from repro.analysis import tracker_ratio
from repro.core.trackers import CmSketchTopK
from repro.sim import M5Options, Simulation
from repro.workloads import build

from common import emit_series, end_to_end_config, normalized_score, once


# ----------------------------------------------------------------------
# 1. Nominator modes

def run_nominator_ablation():
    out = {}
    for bench in ("roms", "redis", "liblinear"):
        base = Simulation(
            build(bench, seed=1), end_to_end_config(), policy="none"
        ).run()
        scores = {}
        for policy in ("m5-hpt", "m5-hwt", "m5-hpt+hwt"):
            result = Simulation(
                build(bench, seed=1), end_to_end_config(), policy=policy
            ).run()
            scores[policy] = normalized_score(base, result)
        out[bench] = scores
    return out


@pytest.fixture(scope="module")
def nominator_scores():
    return run_nominator_ablation()


def check_nominator_guidelines(scores):
    # Guideline 3: HPT-driven (dense-aware) competitive on roms/liblinear.
    for bench in ("roms", "liblinear"):
        assert scores[bench]["m5-hpt+hwt"] >= scores[bench]["m5-hwt"] - 0.05
    # Guideline 4: word-driven nomination competitive on sparse redis.
    assert scores["redis"]["m5-hwt"] >= scores["redis"]["m5-hpt"] * 0.80


def test_nominator_modes(benchmark, nominator_scores):
    scores = once(benchmark, lambda: nominator_scores)
    pairs = []
    for bench, s in scores.items():
        for policy, v in s.items():
            pairs.append((f"{bench}/{policy}", v))
    emit_series("ablation_nominator_modes",
                "Ablation — Nominator mode (normalised performance)", pairs)
    check_nominator_guidelines(scores)


# ----------------------------------------------------------------------
# 2. fscale exponent

def run_fscale_ablation():
    base = Simulation(
        build("roms", seed=1), end_to_end_config(), policy="none"
    ).run()
    scores = {}
    for n in (2.0, 4.0, 6.0):
        result = Simulation(
            build("roms", seed=1), end_to_end_config(), policy="m5-hpt",
            m5_options=M5Options(fscale_n=n),
        ).run()
        scores[n] = normalized_score(base, result)
    return scores


@pytest.fixture(scope="module")
def fscale_scores():
    return run_fscale_ablation()


def check_fscale_secondary(scores):
    values = list(scores.values())
    assert max(values) - min(values) < 0.35
    assert min(values) > 0.9


def test_fscale_exponent(benchmark, fscale_scores):
    scores = once(benchmark, lambda: fscale_scores)
    emit_series("ablation_fscale",
                "Ablation — Elector fscale exponent n (roms)",
                [(f"n={n}", v) for n, v in scores.items()])
    check_fscale_secondary(scores)


# ----------------------------------------------------------------------
# 3. CM-Sketch depth H

def run_depth_ablation():
    wl = build("roms", seed=2, pages_per_gb=4096)
    trace = wl.trace(600_000)
    pages = (trace >> np.uint64(12)).astype(np.int64)
    truth = {int(k): int(v) for k, v in zip(*np.unique(pages, return_counts=True))}
    scores = {}
    for depth in (2, 4, 8, 16):
        tracker = CmSketchTopK(5, num_counters=8192, depth=depth)
        identified, seen = [], set()
        for start in range(0, len(trace), 65_536):
            tracker.observe(trace[start : start + 65_536])
            for key, _ in tracker.query():
                if key not in seen:
                    seen.add(key)
                    identified.append(key)
        scores[depth] = tracker_ratio(truth, identified, k=len(identified))
    return scores


@pytest.fixture(scope="module")
def depth_scores():
    return run_depth_ablation()


def check_depth_secondary(scores):
    """§7.1: H in [2, 16] has only a secondary effect at fixed N."""
    values = list(scores.values())
    assert max(values) - min(values) < 0.2


def test_sketch_depth(benchmark, depth_scores):
    scores = once(benchmark, lambda: depth_scores)
    emit_series("ablation_sketch_depth",
                "Ablation — CM-Sketch depth H at N=8K (roms ratio)",
                [(f"H={d}", v) for d, v in scores.items()])
    check_depth_secondary(scores)


# ----------------------------------------------------------------------
# 4. query period

def run_query_period_ablation():
    """Per-window top-K recall at different query periods.

    Comparing accumulated ratios across periods confounds K (longer
    windows accumulate fewer identifications), so the clean measure is
    windowed: how much of each query window's true top-K access mass
    did the tracker capture?
    """
    wl = build("roms", seed=2, pages_per_gb=4096)
    trace = wl.trace(600_000)
    scores = {}
    for chunk in (16_384, 65_536, 262_144):
        tracker = CmSketchTopK(5, num_counters=32 * 1024)
        window_scores = []
        for start in range(0, len(trace), chunk):
            window = trace[start : start + chunk]
            pages = (window >> np.uint64(12)).astype(np.int64)
            truth = {
                int(k): int(v)
                for k, v in zip(*np.unique(pages, return_counts=True))
            }
            tracker.observe(window)
            picks = [key for key, _ in tracker.query()]
            window_scores.append(tracker_ratio(truth, picks, k=len(picks)))
        scores[chunk] = float(np.mean(window_scores))
    return scores


@pytest.fixture(scope="module")
def period_scores():
    return run_query_period_ablation()


def check_shorter_period_more_precise(scores):
    """§7.1: 'it increases the preciseness as the interval decreases'
    — shorter windows keep the sketch cleaner (fewer accumulated
    collisions per query)."""
    assert scores[16_384] >= scores[262_144] - 0.02


def test_query_period(benchmark, period_scores):
    scores = once(benchmark, lambda: period_scores)
    emit_series("ablation_query_period",
                "Ablation — tracker query period (accesses per query)",
                [(f"{c} acc", v) for c, v in scores.items()])
    check_shorter_period_more_precise(scores)
