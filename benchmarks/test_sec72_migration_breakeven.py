"""§7.2's migration economics: the ~54us cost of moving a page must be
amortised by ~318 extra DDR hits (54us / (270ns − 100ns)), so flat-
tail benchmarks like TC call for conservative migration.

Regenerated here:

* the break-even arithmetic itself;
* per-benchmark: does the marginal page (the bottom-p50 vs bottom-p10
  gap) clear break-even?
* an ablation: on TC, throttling M5's migration (smaller batches,
  lower f_default) should not lose performance — aggressiveness buys
  nothing when pages are equally warm.
"""

import pytest

from repro.analysis import AccessCdf, breakeven_migration_accesses
from repro.sim import M5Options, Simulation
from repro.workloads import MEMORY_INTENSIVE, build

from common import emit_table, end_to_end_config, normalized_score, once, ratio_config


def run_gap_analysis():
    cfg = ratio_config(total_accesses=2_000_000, checkpoints=1)
    factor = cfg.trace_subsample / cfg.footprint_scale
    breakeven = breakeven_migration_accesses(
        cfg.migration_cost_us, cfg.cxl_latency_ns, cfg.ddr_latency_ns
    )
    rows = []
    for bench in MEMORY_INTENSIVE:
        sim = Simulation(build(bench, seed=1), cfg, policy="none")
        sim.run()
        cdf = AccessCdf.from_counts(bench, sim.pac.counts().astype(float) * factor)
        gap = cdf.bottom_gap(50.0, 10.0)
        rows.append({"bench": bench, "bottom_gap": gap,
                     "clears_breakeven": gap > breakeven})
    return breakeven, rows


def run_tc_ablation():
    """Conservative (stop once DDR is full unless migration provably
    helps — the default Elector) vs aggressive (no dead band: keep
    swapping marginal pages every period)."""
    base = Simulation(build("tc", seed=1), end_to_end_config(), policy="none").run()
    aggressive = Simulation(
        build("tc", seed=1), end_to_end_config(), policy="m5-hpt",
        m5_options=M5Options(k_hpt=256, improvement_epsilon=-1.0),
    ).run()
    conservative = Simulation(
        build("tc", seed=1), end_to_end_config(), policy="m5-hpt",
        m5_options=M5Options(),
    ).run()
    return {
        "aggressive": normalized_score(base, aggressive),
        "conservative": normalized_score(base, conservative),
        "aggressive_migrations": aggressive.promoted + aggressive.demoted,
        "conservative_migrations": conservative.promoted + conservative.demoted,
    }


@pytest.fixture(scope="module")
def gap_data():
    return run_gap_analysis()


@pytest.fixture(scope="module")
def tc_ablation():
    return run_tc_ablation()


def check_breakeven_constant(breakeven):
    """54us / (270ns − 100ns) ≈ 318 accesses."""
    assert breakeven == pytest.approx(317.6, abs=0.5)


def check_tc_below_breakeven(breakeven, rows):
    tc = next(r for r in rows if r["bench"] == "tc")
    assert not tc["clears_breakeven"]


def check_conservative_wins_or_ties_on_tc(ablation):
    """Aggressive migration buys nothing on flat-tailed TC."""
    assert ablation["conservative"] >= ablation["aggressive"] - 0.05
    assert ablation["conservative_migrations"] < ablation["aggressive_migrations"]


def test_sec72_regenerate(benchmark, gap_data, tc_ablation):
    (breakeven, rows), ablation = once(
        benchmark, lambda: (gap_data, tc_ablation)
    )
    table = [[r["bench"], r["bottom_gap"],
              "yes" if r["clears_breakeven"] else "no"] for r in rows]
    emit_table(
        "sec72_migration_breakeven",
        f"§7.2 — bottom-p50 vs bottom-p10 access gap vs the "
        f"{breakeven:.0f}-access migration break-even "
        f"(TC ablation: conservative={ablation['conservative']:.2f}, "
        f"aggressive={ablation['aggressive']:.2f})",
        ["bench", "bottom_gap", "clears_breakeven"],
        table,
        precision=1,
    )
    check_breakeven_constant(breakeven)
    check_tc_below_breakeven(breakeven, rows)
    check_conservative_wins_or_ties_on_tc(ablation)


def test_breakeven_constant(gap_data):
    check_breakeven_constant(gap_data[0])


def test_tc_below_breakeven(gap_data):
    check_tc_below_breakeven(*gap_data)


def test_conservative_wins_or_ties_on_tc(tc_ablation):
    check_conservative_wins_or_ties_on_tc(tc_ablation)
