"""Figure 3: average access-count ratio of hot pages identified by
ANB and DAMON, scored against PAC's ground truth.

Paper claims reproduced here:

* both solutions score below 0.4 for most of the twelve benchmarks —
  they identify *warm* pages (Observation 1);
* cactuBSSN, fotonik3d, and mcf are the exceptions (flat, stable page
  heat makes even warm selection score well);
* DAMON generally scores above ANB;
* the per-execution-point spread (min/max across the 10 measurement
  points) is reported like the paper's error bars.
"""

import numpy as np
import pytest

from repro.sim import Simulation
from repro.workloads import MEMORY_INTENSIVE, build

from common import emit_table, once, ratio_config

EXCEPTIONS = {"cactubssn", "fotonik3d", "mcf"}


def run_experiment():
    rows = []
    for bench in MEMORY_INTENSIVE:
        row = {"bench": bench}
        for policy in ("anb", "damon"):
            sim = Simulation(build(bench, seed=1), ratio_config(), policy=policy)
            result = sim.run()
            checkpoints = result.ratio_checkpoints
            row[policy] = float(np.mean(checkpoints))
            row[f"{policy}_min"] = float(np.min(checkpoints))
            row[f"{policy}_max"] = float(np.max(checkpoints))
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def fig3_rows():
    return run_experiment()


def check_most_benchmarks_identify_warm_pages(rows):
    """Observation 1: ratios below 0.4 outside the exception trio."""
    regular = [r for r in rows if r["bench"] not in EXCEPTIONS]
    below = [r for r in regular if r["anb"] < 0.4 and r["damon"] < 0.4]
    assert len(below) >= len(regular) - 1


def check_exception_trio_scores_higher(rows):
    """cactuBSSN/fotonik3d/mcf: the flat-heat 'good cases'."""
    trio = [r for r in rows if r["bench"] in EXCEPTIONS]
    regular = [r for r in rows if r["bench"] not in EXCEPTIONS]
    assert np.mean([r["anb"] for r in trio]) > 2 * np.mean(
        [r["anb"] for r in regular]
    )


def check_damon_overall_above_anb(rows):
    """'Overall, DAMON offers higher average access-count ratios than
    ANB.'"""
    assert np.mean([r["damon"] for r in rows]) > np.mean(
        [r["anb"] for r in rows]
    )


def check_mean_ratios_in_paper_band(rows):
    """Paper: ANB 21% and DAMON 29% on average (we accept a band)."""
    anb = np.mean([r["anb"] for r in rows])
    damon = np.mean([r["damon"] for r in rows])
    assert 0.08 <= anb <= 0.40
    assert 0.12 <= damon <= 0.50


def test_fig03_regenerate(benchmark, fig3_rows):
    rows = once(benchmark, lambda: fig3_rows)
    emit_table(
        "fig03_cpu_driven_ratio",
        "Figure 3 — average access-count ratio of ANB / DAMON "
        "(paper means: ANB 0.21, DAMON 0.29)",
        ["bench", "anb", "anb_min", "anb_max", "damon", "damon_min", "damon_max"],
        [
            [r["bench"], r["anb"], r["anb_min"], r["anb_max"],
             r["damon"], r["damon_min"], r["damon_max"]]
            for r in rows
        ],
        col_width=12,
    )
    check_most_benchmarks_identify_warm_pages(rows)
    check_exception_trio_scores_higher(rows)
    check_damon_overall_above_anb(rows)
    check_mean_ratios_in_paper_band(rows)


def test_most_benchmarks_identify_warm_pages(fig3_rows):
    check_most_benchmarks_identify_warm_pages(fig3_rows)


def test_exception_trio_scores_higher(fig3_rows):
    check_exception_trio_scores_higher(fig3_rows)


def test_damon_overall_above_anb(fig3_rows):
    check_damon_overall_above_anb(fig3_rows)


def test_mean_ratios_in_paper_band(fig3_rows):
    check_mean_ratios_in_paper_band(fig3_rows)
