"""Extension: CXL as a *bandwidth* expander (the paper's §1 premise).

The evaluation section studies the latency side of tiered memory, but
the introduction motivates CXL equally as bandwidth expansion ("CXL
built on PCIe 5.0 can offer the same bandwidth as DDR5 with 3x fewer
pins").  With the optional per-node bandwidth ceilings enabled, this
bench shows the complementary regime:

* a bandwidth-bound workload (many cores, high MLP) saturates a
  deliberately narrow DDR configuration;
* spreading pages across DDR *and* CXL adds the CXL link's bandwidth
  to the system and beats the DDR-only placement, even though every
  CXL access is slower;
* with generous DDR bandwidth the ordering flips back — latency rules
  again, confirming the model reduces to the paper's latency story
  when bandwidth is not the constraint.
"""

import pytest

from repro.memory.tiers import NodeKind, TieredMemory
from repro.sim import SimConfig
from repro.sim.perf import PerformanceModel
from repro.workloads import build, uniform_workload

from common import emit_series, once

ACCESSES = 1_000_000


def _epoch_time(ddr_share, ddr_gbps, cxl_gbps, mlp=8.0, cores=20):
    """Memory wall-time of one epoch with the given placement split."""
    cfg = SimConfig(
        total_accesses=ACCESSES,
        mlp=mlp,
        ddr_bandwidth_gbps=ddr_gbps,
        cxl_bandwidth_gbps=cxl_gbps,
        trace_subsample=64.0,
    )
    spec = build("pr", seed=1).spec
    perf = PerformanceModel(cfg, spec)
    n_ddr = int(ACCESSES * ddr_share)
    e = perf.record_epoch(n_ddr, ACCESSES - n_ddr, 0.0, 0.0)
    return e.total_s


def run_experiment():
    # Narrow DDR (one channel's worth) + a CXL x8-class link.
    narrow = {
        "ddr-only": _epoch_time(1.0, ddr_gbps=8.0, cxl_gbps=16.0),
        "interleaved 70/30": _epoch_time(0.7, ddr_gbps=8.0, cxl_gbps=16.0),
        "interleaved 50/50": _epoch_time(0.5, ddr_gbps=8.0, cxl_gbps=16.0),
    }
    # Generous DDR: latency regime, DDR-only should win again.
    wide = {
        "ddr-only": _epoch_time(1.0, ddr_gbps=0.0, cxl_gbps=0.0),
        "interleaved 50/50": _epoch_time(0.5, ddr_gbps=0.0, cxl_gbps=0.0),
    }
    return narrow, wide


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def check_interleaving_beats_narrow_ddr(narrow):
    assert narrow["interleaved 70/30"] < narrow["ddr-only"]


def check_latency_regime_prefers_ddr(wide):
    assert wide["ddr-only"] < wide["interleaved 50/50"]


def test_bandwidth_expansion_regenerate(benchmark, results):
    narrow, wide = once(benchmark, lambda: results)
    emit_series(
        "ext_bandwidth_expansion",
        "Extension — epoch memory wall-time (s): bandwidth-bound narrow-DDR "
        "system vs latency-bound system",
        [(f"narrow {k}", v) for k, v in narrow.items()]
        + [(f"wide {k}", v) for k, v in wide.items()],
    )
    check_interleaving_beats_narrow_ddr(narrow)
    check_latency_regime_prefers_ddr(wide)


def test_interleaving_beats_narrow_ddr(results):
    check_interleaving_beats_narrow_ddr(results[0])


def test_latency_regime_prefers_ddr(results):
    check_latency_regime_prefers_ddr(results[1])


def test_bandwidth_ceiling_respected():
    """Sanity: a node can never move bytes faster than its ceiling."""
    cfg = SimConfig(ddr_bandwidth_gbps=1.0, trace_subsample=1.0,
                    footprint_scale=1.0)
    spec = uniform_workload(footprint_pages=64).spec
    perf = PerformanceModel(cfg, spec)
    n = 10_000_000
    e = perf.record_epoch(n, 0, 0.0, 0.0)
    assert e.memory_s >= n * 64 / 1e9  # 1 GB/s ceiling
