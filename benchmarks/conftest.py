"""Benchmark-suite conftest: keeps the directory importable so the
shared ``common`` helpers resolve."""
