"""Extension: sensitivity of the end-to-end result to the two
parameters the paper fixes — fast-tier capacity (3GB cgroup cap) and
the CXL latency premium (140–170ns over DDR).

Shapes asserted:

* more DDR capacity monotonically helps (with diminishing returns
  once the hot set fits);
* a larger CXL latency premium widens M5's gain over no migration —
  page placement matters more the slower the far tier is.
"""

import pytest

from repro.sim import SimConfig, Simulation
from repro.workloads import build, registry

from common import emit_series, once

BENCH = "roms"


def _run(ddr_pages, cxl_latency_ns=270.0):
    cfg = SimConfig(
        total_accesses=1_000_000,
        chunk_size=16_384,
        ddr_pages=ddr_pages,
        cxl_latency_ns=cxl_latency_ns,
        trace_subsample=64.0,
        checkpoints=1,
    )
    base = Simulation(build(BENCH, seed=1), cfg, policy="none").run()
    m5 = Simulation(build(BENCH, seed=1), cfg, policy="m5-hpt").run()
    return base.execution_time_s / m5.execution_time_s


def run_capacity_sweep():
    per_gb = registry.PAGES_PER_GB
    return {gb: _run(int(gb * per_gb)) for gb in (1, 2, 3, 4, 5)}


def run_latency_sweep():
    per_gb = registry.PAGES_PER_GB
    return {ns: _run(3 * per_gb, cxl_latency_ns=ns)
            for ns in (170.0, 270.0, 400.0)}


@pytest.fixture(scope="module")
def capacity_scores():
    return run_capacity_sweep()


@pytest.fixture(scope="module")
def latency_scores():
    return run_latency_sweep()


def check_capacity_monotone(scores):
    gbs = sorted(scores)
    values = [scores[g] for g in gbs]
    # Monotone non-decreasing within tolerance, and everything >= 1.
    assert all(b >= a - 0.05 for a, b in zip(values, values[1:]))
    assert scores[5] > scores[1]
    assert min(values) > 0.95


def check_diminishing_returns(scores):
    """The first GBs buy more than the last (hot set fits early)."""
    early = scores[3] - scores[1]
    late = scores[5] - scores[3]
    assert early > late - 0.02


def check_latency_premium_widens_gain(scores):
    assert scores[400.0] > scores[170.0]


def test_sensitivity_regenerate(benchmark, capacity_scores, latency_scores):
    cap, lat = once(benchmark, lambda: (capacity_scores, latency_scores))
    emit_series(
        "ext_capacity_sensitivity",
        f"Extension — M5 gain vs DDR capacity ({BENCH}, norm. to no migration)",
        [(f"{gb} GB", v) for gb, v in sorted(cap.items())],
    )
    emit_series(
        "ext_latency_sensitivity",
        f"Extension — M5 gain vs CXL latency ({BENCH})",
        [(f"{ns:.0f} ns", v) for ns, v in sorted(lat.items())],
    )
    check_capacity_monotone(cap)
    check_diminishing_returns(cap)
    check_latency_premium_widens_gain(lat)


def test_capacity_monotone(capacity_scores):
    check_capacity_monotone(capacity_scores)


def test_diminishing_returns(capacity_scores):
    check_diminishing_returns(capacity_scores)


def test_latency_premium_widens_gain(latency_scores):
    check_latency_premium_widens_gain(latency_scores)
