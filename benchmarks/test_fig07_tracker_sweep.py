"""Figure 7: simulation-based average access-count ratio of HPT (a)
and HWT (b), for Space-Saving and CM-Sketch trackers across N.

The paper collects cache-filtered DRAM traces (Pin + Ramulator) from
six benchmarks and feeds them to an in-house tracker simulator.  We
generate the same six benchmarks' traces at a larger-than-default
footprint scale (so the sketch sees realistic address cardinality),
replay them through the trackers with periodic queries, and score the
accumulated identifications against exact per-key counts.

Paper claims reproduced here:

* preciseness strongly depends on N for both algorithms;
* Space-Saving beats CM-Sketch at equal (small) N — the sketch
  "severely suffers from hash collisions when N is small";
* under the 400MHz feasibility limits, CM-Sketch at its N = 32K
  operating point beats Space-Saving at its N = 50 limit by a wide
  margin (paper: 0.97 vs 0.49 on average).
"""

import numpy as np
import pytest

from repro.analysis import tracker_ratio
from repro.core.trackers import CmSketchTopK, SpaceSavingTopK
from repro.workloads import TRACKER_SWEEP_SET, build

from common import emit_table, once

#: Larger footprints than the default registry scale, for cardinality.
PAGES_PER_GB = 4096
TRACE_ACCESSES = 1_000_000
CHUNK = 65_536
#: Queries per trace — each chunk boundary is one query period.
K = 5

SS_SWEEP = (50, 100, 512, 1024, 2048)
CMS_SWEEP = (2048, 8192, 32768)


def _trace_and_truth(bench):
    wl = build(bench, seed=2, pages_per_gb=PAGES_PER_GB)
    trace = wl.trace(TRACE_ACCESSES)
    pages = (trace >> np.uint64(12)).astype(np.int64)
    words = (trace >> np.uint64(6)).astype(np.int64)
    page_truth = {
        int(k): int(v) for k, v in zip(*np.unique(pages, return_counts=True))
    }
    word_truth = {
        int(k): int(v) for k, v in zip(*np.unique(words, return_counts=True))
    }
    return trace, page_truth, word_truth


def _score(tracker, trace, truth):
    """Replay with per-chunk queries; score accumulated top-K picks."""
    identified = []
    seen = set()
    for start in range(0, len(trace), CHUNK):
        tracker.observe(trace[start : start + CHUNK])
        for key, _ in tracker.query():
            if key not in seen:
                seen.add(key)
                identified.append(key)
    return tracker_ratio(truth, identified, k=len(identified))


def run_experiment():
    hpt_rows, hwt_rows = [], []
    for bench in TRACKER_SWEEP_SET:
        trace, page_truth, word_truth = _trace_and_truth(bench)
        hpt = {"bench": bench}
        hwt = {"bench": bench}
        for n in SS_SWEEP:
            hpt[f"ss_{n}"] = _score(
                SpaceSavingTopK(K, capacity=n, granularity="page"),
                trace, page_truth,
            )
        for n in CMS_SWEEP:
            hpt[f"cms_{n}"] = _score(
                CmSketchTopK(K, num_counters=n, granularity="page"),
                trace, page_truth,
            )
        # HWT: word granularity, smaller SS sweep (runtime).
        for n in (50, 512, 2048):
            hwt[f"ss_{n}"] = _score(
                SpaceSavingTopK(K, capacity=n, granularity="word"),
                trace, word_truth,
            )
        for n in CMS_SWEEP:
            hwt[f"cms_{n}"] = _score(
                CmSketchTopK(K, num_counters=n, granularity="word"),
                trace, word_truth,
            )
        hpt_rows.append(hpt)
        hwt_rows.append(hwt)
    return hpt_rows, hwt_rows


@pytest.fixture(scope="module")
def sweep():
    return run_experiment()


def check_preciseness_grows_with_n(hpt_rows):
    ss_small = np.mean([r["ss_50"] for r in hpt_rows])
    ss_large = np.mean([r["ss_2048"] for r in hpt_rows])
    cms_small = np.mean([r["cms_2048"] for r in hpt_rows])
    cms_large = np.mean([r["cms_32768"] for r in hpt_rows])
    assert ss_large > ss_small
    assert cms_large >= cms_small


def check_feasible_points_favor_cm_sketch(hpt_rows, hwt_rows):
    cms_op = np.mean([r["cms_32768"] for r in hpt_rows])
    ss_op = np.mean([r["ss_50"] for r in hpt_rows])
    assert cms_op > ss_op + 0.1
    assert cms_op > 0.75
    assert np.mean([r["cms_32768"] for r in hwt_rows]) > np.mean(
        [r["ss_50"] for r in hwt_rows]
    )


def test_fig07_regenerate(benchmark, sweep):
    hpt_rows, hwt_rows = once(benchmark, lambda: sweep)
    check_preciseness_grows_with_n(hpt_rows)
    check_feasible_points_favor_cm_sketch(hpt_rows, hwt_rows)
    emit_table(
        "fig07a_hpt_sweep",
        "Figure 7(a) — HPT average access-count ratio vs N",
        ["bench"] + [f"ss_{n}" for n in SS_SWEEP] + [f"cms_{n}" for n in CMS_SWEEP],
        [
            [r["bench"]] + [r[f"ss_{n}"] for n in SS_SWEEP]
            + [r[f"cms_{n}"] for n in CMS_SWEEP]
            for r in hpt_rows
        ],
    )
    emit_table(
        "fig07b_hwt_sweep",
        "Figure 7(b) — HWT average access-count ratio vs N",
        ["bench", "ss_50", "ss_512", "ss_2048",
         "cms_2048", "cms_8192", "cms_32768"],
        [
            [r["bench"], r["ss_50"], r["ss_512"], r["ss_2048"],
             r["cms_2048"], r["cms_8192"], r["cms_32768"]]
            for r in hwt_rows
        ],
    )


def test_preciseness_grows_with_n(sweep):
    """'The average access-count ratio ... strongly depends on N.'"""
    hpt_rows, _ = sweep
    ss_small = np.mean([r["ss_50"] for r in hpt_rows])
    ss_large = np.mean([r["ss_2048"] for r in hpt_rows])
    cms_small = np.mean([r["cms_2048"] for r in hpt_rows])
    cms_large = np.mean([r["cms_32768"] for r in hpt_rows])
    assert ss_large > ss_small
    assert cms_large >= cms_small


def test_space_saving_more_precise_at_equal_n(sweep):
    """At the same (small) N, Space-Saving beats the collision-prone
    sketch."""
    hpt_rows, _ = sweep
    ss = np.mean([r["ss_2048"] for r in hpt_rows])
    cms = np.mean([r["cms_2048"] for r in hpt_rows])
    assert ss >= cms - 0.02


def test_feasible_operating_points_favor_cm_sketch(sweep):
    """CM-Sketch at its 32K feasibility point beats Space-Saving at
    its 50-entry FPGA limit (paper: 0.97 vs 0.49)."""
    hpt_rows, hwt_rows = sweep
    cms_op = np.mean([r["cms_32768"] for r in hpt_rows])
    ss_op = np.mean([r["ss_50"] for r in hpt_rows])
    assert cms_op > ss_op + 0.1
    assert cms_op > 0.75
    cms_w = np.mean([r["cms_32768"] for r in hwt_rows])
    ss_w = np.mean([r["ss_50"] for r in hwt_rows])
    assert cms_w > ss_w
