"""Table 4: size and power of the Space-Saving (CAM) and CM-Sketch
(SRAM) top-5 trackers in 7nm logic, under the 400MHz constraint.

Paper claims reproduced here:

* the Space-Saving CAM closes timing only up to N = 2K entries (50 on
  the FPGA), the CM-Sketch SRAM up to 128K (FPGA) and beyond;
* at N = 2K the CAM design costs 33.6x the area and 7.6x the power of
  the sketch design;
* the 32K-entry tracker occupies ~0.01% of an 8GB module's die area.
"""

import pytest

from repro.core import hwcost

from common import emit_table, once

ENTRIES = (50, 100, 512, 1024, 2048, 8192, 32768, 131072)


def run_experiment():
    return hwcost.table4(ENTRIES)


@pytest.fixture(scope="module")
def rows():
    return run_experiment()


def check_calibration_points(rows):
    by_n = {r["entries"]: r for r in rows}
    assert by_n[50]["space_saving_area_um2"] == pytest.approx(3649.0)
    assert by_n[32768]["cm_sketch_area_um2"] == pytest.approx(46930.0)
    assert hwcost.relative_cost(2048)["area_ratio"] == pytest.approx(33.6, rel=0.01)


def test_table4_regenerate(benchmark, rows):
    result = once(benchmark, lambda: rows)
    emit_table(
        "table4_hwcost",
        "Table 4 — top-5 tracker size (um^2) and power (mW), 7nm",
        ["entries", "SS_area", "CMS_area", "SS_power", "CMS_power"],
        [
            [r["entries"], r["space_saving_area_um2"], r["cm_sketch_area_um2"],
             r["space_saving_power_mw"], r["cm_sketch_power_mw"]]
            for r in result
        ],
        precision=1,
        col_width=12,
    )
    check_calibration_points(result)


def test_calibration_points_exact(rows):
    by_n = {r["entries"]: r for r in rows}
    assert by_n[50]["space_saving_area_um2"] == pytest.approx(3649.0)
    assert by_n[2048]["space_saving_area_um2"] == pytest.approx(179625.0)
    assert by_n[32768]["cm_sketch_area_um2"] == pytest.approx(46930.0)
    assert by_n[131072]["cm_sketch_power_mw"] == pytest.approx(83.8)


def test_space_saving_infeasible_beyond_2k(rows):
    for r in rows:
        if r["entries"] > 2048:
            assert r["space_saving_area_um2"] is None
        else:
            assert r["space_saving_area_um2"] is not None


def test_headline_cost_ratios(rows):
    rel = hwcost.relative_cost(2048)
    assert rel["area_ratio"] == pytest.approx(33.6, rel=0.01)
    assert rel["power_ratio"] == pytest.approx(7.7, rel=0.02)


def test_chip_overhead_headline():
    assert hwcost.chip_overhead_fraction(32 * 1024) < 1e-3


def test_timing_requirement():
    assert hwcost.max_access_rate_hz() == pytest.approx(400e6)
    assert hwcost.feasible_entries("space-saving", "fpga") == 50
    assert hwcost.feasible_entries("cm-sketch", "fpga") == 128 * 1024
