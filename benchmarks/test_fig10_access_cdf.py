"""Figure 10: distribution (CDF) of per-4KB-page access counts,
collected with PAC.

Paper claims reproduced here:

* roms_r's hot tail: its p90/p95/p99 pages are ~2x/8x/17x hotter than
  its p50 page — why precise migration pays off most there;
* Liblinear has the most skewed distribution of the suite;
* TC's bottom half is nearly flat: the bottom-p50 page sees only a few
  hundred more accesses than the bottom-p10 page, below the ~318-
  access migration break-even (§7.2) — the case for conservative
  migration.
"""

import numpy as np
import pytest

from repro.analysis import AccessCdf, breakeven_migration_accesses
from repro.sim import Simulation
from repro.workloads import MEMORY_INTENSIVE, build

from common import emit_table, once, ratio_config

#: Convert model page counts to real per-page counts: a model page
#: groups footprint_scale real pages but carries time_dilation times
#: fewer sampled accesses; net factor = subsample / footprint_scale.
def _real_count_factor(cfg):
    return cfg.trace_subsample / cfg.footprint_scale


def run_experiment():
    cdfs = {}
    cfg = ratio_config(total_accesses=2_000_000, checkpoints=1)
    for bench in MEMORY_INTENSIVE:
        sim = Simulation(build(bench, seed=1), cfg, policy="none")
        sim.run()
        counts = sim.pac.counts().astype(np.float64) * _real_count_factor(cfg)
        cdfs[bench] = AccessCdf.from_counts(bench, counts)
    return cdfs


@pytest.fixture(scope="module")
def cdfs():
    return run_experiment()


def check_roms_hot_tail(cdfs):
    skew = cdfs["roms"].skew_summary()
    assert 1.3 <= skew["p90_over_p50"] <= 4.0
    assert 2.0 <= skew["p95_over_p50"] <= 16.0
    assert 8.0 <= skew["p99_over_p50"] <= 34.0


def check_liblinear_most_skewed(cdfs):
    lib = cdfs["liblinear"].gini()
    others = [c.gini() for b, c in cdfs.items() if b != "liblinear"]
    assert lib >= max(others) - 0.05


def check_tc_bottom_flat_below_breakeven(cdfs):
    """§7.2: TC's bottom-p50 minus bottom-p10 gap (~288 accesses)
    cannot amortise a 54us migration (~318 accesses)."""
    gap = cdfs["tc"].bottom_gap(50.0, 10.0)
    assert gap < breakeven_migration_accesses()


def check_flat_trio_tight(cdfs):
    """mcf/cactuBSSN/fotonik3d active pages are nearly equally hot."""
    for bench in ("mcf", "cactubssn", "fotonik3d"):
        counts = cdfs[bench].counts
        active = counts[counts > np.quantile(counts, 0.65)]
        assert np.quantile(active, 0.99) / np.quantile(active, 0.5) < 4, bench


def test_fig10_regenerate(benchmark, cdfs):
    result = once(benchmark, lambda: cdfs)
    rows = []
    for bench in MEMORY_INTENSIVE:
        cdf = result[bench]
        skew = cdf.skew_summary()
        rows.append(
            [bench, cdf.percentile(50), skew["p90_over_p50"],
             skew["p95_over_p50"], skew["p99_over_p50"], cdf.gini(),
             cdf.bottom_gap(50.0, 10.0)]
        )
    emit_table(
        "fig10_access_cdf",
        "Figure 10 — per-page access-count distribution (real-count "
        "scale): p50 count, hotness ratios, Gini, bottom p50-p10 gap",
        ["bench", "p50", "p90/p50", "p95/p50", "p99/p50", "gini", "botgap"],
        rows,
        precision=2,
    )
    check_roms_hot_tail(result)
    check_liblinear_most_skewed(result)
    check_tc_bottom_flat_below_breakeven(result)
    check_flat_trio_tight(result)


def test_roms_hot_tail(cdfs):
    check_roms_hot_tail(cdfs)


def test_liblinear_most_skewed(cdfs):
    check_liblinear_most_skewed(cdfs)


def test_tc_bottom_flat_below_breakeven(cdfs):
    check_tc_bottom_flat_below_breakeven(cdfs)


def test_flat_trio_tight(cdfs):
    check_flat_trio_tight(cdfs)


def test_cdf_curves_have_figure10_domain(cdfs):
    """The paper plots log10 counts from 1 to 8; our scaled traces
    should at least span several decades."""
    for bench, cdf in cdfs.items():
        x, f = cdf.cdf_points()
        assert f[-1] == pytest.approx(1.0)
        assert f[0] <= 0.5, bench
