"""Figure 8: full-system average access-count ratios of HPT, with the
trackers queried at the rates Elector determines.

Bars: the best CPU-driven solution (max of ANB/DAMON per benchmark),
M5 with a Space-Saving HPT at its 50-entry FPGA feasibility limit, and
M5 with the CM-Sketch HPT at its 32K operating point.

Paper claims reproduced here:

* CM-Sketch-32K beats the best CPU-driven solution by ~47% on average
  (0.72 vs ~0.49 in the paper);
* CM-Sketch-32K edges out Space-Saving-50 (paper: +3.5%) because the
  timing-feasible CAM is tiny;
* M5 scores below PAC's 1.0 because it ranks pages within query
  windows while PAC scores the entire run (§7.2's discussion).

Scaling note: the model footprint is ``footprint_scale`` times smaller
than the paper's, so the CM-Sketch size is scaled by the same factor
to preserve the address-cardinality-to-counter pressure; the
Space-Saving CAM keeps its absolute 50 entries (it is a hardware
limit, and scaling it below K would be meaningless).
"""

import numpy as np
import pytest

from repro.sim import M5Options, Simulation
from repro.workloads import MEMORY_INTENSIVE, build

from common import emit_table, once, ratio_config

#: Preserve the paper's pages-per-counter pressure for the sketch.
PAGES_PER_GB = 4096
CMS_COUNTERS = max(512, (32 * 1024 * PAGES_PER_GB) // 262144)


def _run(bench, policy, m5_options=None):
    cfg = ratio_config(total_accesses=1_000_000, pages_per_gb=PAGES_PER_GB)
    sim = Simulation(
        build(bench, seed=1, pages_per_gb=PAGES_PER_GB),
        cfg,
        policy=policy,
        m5_options=m5_options,
    )
    return sim.run().access_count_ratio


def run_experiment():
    rows = []
    for bench in MEMORY_INTENSIVE:
        cpu_best = max(_run(bench, "anb"), _run(bench, "damon"))
        ss50 = _run(
            bench, "m5-hpt",
            M5Options(algorithm="space-saving", num_counters=50, k_hpt=32),
        )
        cms = _run(
            bench, "m5-hpt",
            M5Options(algorithm="cm-sketch", num_counters=CMS_COUNTERS),
        )
        rows.append(
            {"bench": bench, "cpu_best": cpu_best, "m5_ss50": ss50,
             "m5_cms32k": cms}
        )
    return rows


@pytest.fixture(scope="module")
def fig8_rows():
    return run_experiment()


def check_cms_beats_cpu_driven(rows):
    """Paper: +47% on average over the best CPU-driven solution, and
    wins on every benchmark; at this scale we require the average gap
    plus a clear majority of per-benchmark wins (the flat-heat trio is
    where CPU-driven solutions come closest)."""
    cms = np.mean([r["m5_cms32k"] for r in rows])
    cpu = np.mean([r["cpu_best"] for r in rows])
    assert cms > cpu * 1.3
    wins = sum(1 for r in rows if r["m5_cms32k"] > r["cpu_best"])
    assert wins >= 8


def check_cms_at_least_matches_ss50(rows):
    """Paper: +3.5% on average over Space-Saving at N = 50."""
    cms = np.mean([r["m5_cms32k"] for r in rows])
    ss = np.mean([r["m5_ss50"] for r in rows])
    assert cms >= ss * 0.98


def check_online_ratio_below_oracle(rows):
    """§7.2: windowed ranking cannot reach PAC's whole-run 1.0 (the
    paper measures 0.72; our harsher counter pressure lands lower)."""
    assert all(r["m5_cms32k"] <= 1.0 + 1e-9 for r in rows)
    assert np.mean([r["m5_cms32k"] for r in rows]) > 0.35


def test_fig08_regenerate(benchmark, fig8_rows):
    rows = once(benchmark, lambda: fig8_rows)
    emit_table(
        "fig08_fullsystem_ratio",
        "Figure 8 — full-system access-count ratio of HPT "
        f"(CM-Sketch scaled to {CMS_COUNTERS} counters; paper means: "
        "CPU-best ~0.49, M5 CMS-32K ~0.72)",
        ["bench", "cpu_best", "m5_ss50", "m5_cms32k"],
        [[r["bench"], r["cpu_best"], r["m5_ss50"], r["m5_cms32k"]]
         for r in rows],
        col_width=12,
    )
    check_cms_beats_cpu_driven(rows)
    check_cms_at_least_matches_ss50(rows)
    check_online_ratio_below_oracle(rows)


def test_cms_beats_cpu_driven(fig8_rows):
    check_cms_beats_cpu_driven(fig8_rows)


def test_cms_at_least_matches_ss50(fig8_rows):
    check_cms_at_least_matches_ss50(fig8_rows)


def test_online_ratio_below_oracle(fig8_rows):
    check_online_ratio_below_oracle(fig8_rows)
