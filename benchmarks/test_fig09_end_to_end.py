"""Figure 9: end-to-end performance of ANB, DAMON, and the three M5
Nominator configurations, normalised to no page migration.

Metric: execution time for best-effort benchmarks, inverse p99 request
latency for Redis (§7's methodology).

Paper claims reproduced here:

* DAMON is the stronger CPU-driven baseline (+6% over ANB on average);
* M5 beats both (paper: +14% over DAMON, +20% over ANB, 2.06x over no
  migration on average; our scaled absolute levels are lower but the
  ordering and gaps hold);
* M5's advantage is largest on skew-heavy benchmarks (roms,
  liblinear), minimal on PageRank (similar hotness across pages);
* on Redis, M5 wins with virtually no identification cost while
  DAMON's continuous scanning costs tail latency.
"""

import numpy as np
import pytest

from repro.sim import Simulation
from repro.workloads import MEMORY_INTENSIVE, build

from common import emit_table, end_to_end_config, normalized_score, once

POLICIES = ("anb", "damon", "m5-hpt", "m5-hwt", "m5-hpt+hwt")


def run_experiment():
    rows = []
    for bench in MEMORY_INTENSIVE:
        base = Simulation(
            build(bench, seed=1), end_to_end_config(), policy="none"
        ).run()
        row = {"bench": bench}
        for policy in POLICIES:
            result = Simulation(
                build(bench, seed=1), end_to_end_config(), policy=policy
            ).run()
            row[policy] = normalized_score(base, result)
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def fig9_rows():
    return run_experiment()


def _mean(rows, policy):
    return float(np.mean([r[policy] for r in rows]))


def check_m5_beats_cpu_driven_on_average(rows):
    """Paper: M5 +14% over DAMON, +20% over ANB."""
    m5 = _mean(rows, "m5-hpt")
    assert m5 > _mean(rows, "damon") * 1.05
    assert m5 > _mean(rows, "anb") * 1.10


def check_damon_beats_anb_on_average(rows):
    """Paper: DAMON +6% over ANB."""
    assert _mean(rows, "damon") > _mean(rows, "anb")


def check_m5_advantage_largest_on_skewed(rows):
    """roms/liblinear reward precision; PageRank does not (§7.2)."""
    by = {r["bench"]: r for r in rows}
    roms_gain = by["roms"]["m5-hpt"] / by["roms"]["anb"]
    lib_gain = by["liblinear"]["m5-hpt"] / by["liblinear"]["damon"]
    pr_gain = by["pr"]["m5-hpt"] / max(by["pr"]["anb"], by["pr"]["damon"])
    assert roms_gain > 1.15
    assert lib_gain > 1.10
    assert roms_gain > pr_gain - 0.25


def check_redis_ordering(rows):
    """M5 best on Redis; DAMON pays for its continuous scanning."""
    redis = next(r for r in rows if r["bench"] == "redis")
    best_m5 = max(redis["m5-hpt"], redis["m5-hwt"], redis["m5-hpt+hwt"])
    assert best_m5 > redis["damon"]
    assert best_m5 > redis["anb"]


def check_migration_helps_overall(rows):
    """Averaged over the suite, M5 clearly beats no migration."""
    assert _mean(rows, "m5-hpt") > 1.10


def test_fig09_regenerate(benchmark, fig9_rows):
    rows = once(benchmark, lambda: fig9_rows)
    table_rows = [
        [r["bench"]] + [r[p] for p in POLICIES] for r in rows
    ]
    table_rows.append(
        ["mean"] + [_mean(rows, p) for p in POLICIES]
    )
    emit_table(
        "fig09_end_to_end",
        "Figure 9 — performance normalised to no migration "
        "(Redis scored by inverse p99)",
        ["bench"] + list(POLICIES),
        table_rows,
        col_width=12,
    )
    check_m5_beats_cpu_driven_on_average(rows)
    check_damon_beats_anb_on_average(rows)
    check_m5_advantage_largest_on_skewed(rows)
    check_redis_ordering(rows)
    check_migration_helps_overall(rows)


def test_m5_beats_cpu_driven_on_average(fig9_rows):
    check_m5_beats_cpu_driven_on_average(fig9_rows)


def test_damon_beats_anb_on_average(fig9_rows):
    check_damon_beats_anb_on_average(fig9_rows)


def test_m5_advantage_largest_on_skewed(fig9_rows):
    check_m5_advantage_largest_on_skewed(fig9_rows)


def test_redis_ordering(fig9_rows):
    check_redis_ordering(fig9_rows)


def test_migration_helps_overall(fig9_rows):
    check_migration_helps_overall(fig9_rows)
