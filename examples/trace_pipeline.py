"""The trace pipeline: capture → cache-filter → store → replay.

The paper's §7.1 tracker study feeds the simulator with
"cache-filtered and time-stamped addresses to DRAM" collected via
Intel Pin + Ramulator.  This example is that pipeline end to end:

1. generate a raw access stream;
2. filter it through the LLC model (only misses reach DRAM — this is
   what the CXL controller's trackers actually see);
3. persist it as .npz and reload it;
4. replay it through two tracker designs and compare their picks.

Usage::

    python examples/trace_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import tracker_ratio
from repro.cache import SetAssociativeCache
from repro.core.trackers import CmSketchTopK, SpaceSavingTopK
from repro.workloads import ReplayWorkload, build, capture, save_trace


def main() -> None:
    bench = "roms"
    wl = build(bench, seed=1)

    # 1-2. capture with LLC filtering (CAT: 4 of 15 ways, Table 3).
    llc = SetAssociativeCache(
        capacity_bytes=6 * 1024 * 1024, ways=15, allocated_ways=4
    )
    raw_accesses = 200_000
    trace = capture(wl, raw_accesses, llc=llc)
    print(f"raw accesses     : {raw_accesses}")
    print(f"LLC hit rate     : {llc.hit_rate:.2%}")
    print(f"DRAM trace length: {trace.size} "
          f"({trace.size / raw_accesses:.0%} of raw)")

    # 3. store + reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{bench}.npz"
        save_trace(path, trace, wl.spec, metadata={"llc_ways": 4})
        replay = ReplayWorkload.from_file(path)
        print(f"stored + reloaded: {path.stat().st_size / 1024:.0f} KiB")

        # 4. replay through both tracker designs.
        pages = (replay.trace(trace.size) >> np.uint64(12)).astype(np.int64)
        truth = {int(k): int(v)
                 for k, v in zip(*np.unique(pages, return_counts=True))}
        for label, tracker in (
            ("CM-Sketch 32K", CmSketchTopK(5, num_counters=32 * 1024)),
            ("Space-Saving 50", SpaceSavingTopK(5, capacity=50)),
        ):
            replay.restart()
            identified, seen = [], set()
            for chunk in replay.chunks(trace.size, 65_536):
                tracker.observe(chunk)
                for key, _ in tracker.query():
                    if key not in seen:
                        seen.add(key)
                        identified.append(key)
            score = tracker_ratio(truth, identified, k=len(identified))
            print(f"{label:16s}: access-count ratio {score:.3f} "
                  f"({len(identified)} pages identified)")


if __name__ == "__main__":
    main()
