"""Offline profiling with PAC and WAC (the paper's §3/§4 flow).

Demonstrates the profiling workflow the paper uses to indict
CPU-driven migration: bind a workload to CXL memory, let PAC count
every page access and WAC every word access, then ask

1. how skewed is the page heat (Figure 10's CDF view)?
2. how sparse are the pages (Figure 4's word view)?
3. how hot are the pages a CPU-driven policy (ANB here) identifies,
   relative to the true top-K (the §4.1 access-count ratio)?

Usage::

    python examples/profiling_with_pac_wac.py [benchmark]
"""

import sys

import numpy as np

from repro import workloads
from repro.analysis import AccessCdf, from_wac, ratio
from repro.sim import SimConfig, Simulation


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "redis"
    config = SimConfig(total_accesses=1_500_000, migrate=False, checkpoints=5)

    # One instrumented run: PAC is always attached; WAC on request.
    sim = Simulation(workloads.build(bench, seed=1), config,
                     policy="anb", enable_wac=True)
    result = sim.run()

    # 1. page-heat distribution (Figure 10's view)
    cdf = AccessCdf.from_counts(bench, sim.pac.counts())
    skew = cdf.skew_summary()
    print(f"== {bench}: page heat (PAC) ==")
    print(f"pages touched: {cdf.counts.size}")
    print(f"p90/p50 = {skew['p90_over_p50']:.2f}   "
          f"p95/p50 = {skew['p95_over_p50']:.2f}   "
          f"p99/p50 = {skew['p99_over_p50']:.2f}   "
          f"gini = {cdf.gini():.3f}")

    # 2. word sparsity (Figure 4's view)
    profile = from_wac(bench, sim.wac, min_accesses=128)
    print(f"\n== {bench}: word sparsity (WAC) ==")
    for n in (4, 8, 16, 32, 48):
        print(f"P(page has <= {n:2d} unique words accessed) = "
              f"{profile.at(n):.2f}")
    verdict = ("sparse (HWT-driven Nominator territory, Guideline 4)"
               if profile.mostly_sparse else
               "dense (HPT-only / HPT-driven territory, Guideline 3)")
    print(f"verdict: {verdict}")

    # 3. how good were ANB's picks? (the §4.1 methodology)
    k_cap = sim.workload.spec.footprint_pages // 16
    anb_ratio = ratio(sim.pac, result.hot_pfns, k_cap=k_cap)
    print(f"\n== {bench}: ANB hot-page quality (access-count ratio) ==")
    print(f"pages identified by ANB: {len(set(result.hot_pfns))}")
    print(f"access-count ratio vs PAC top-K: {anb_ratio:.3f}")
    print(f"checkpointed ratios: "
          f"{np.round(result.ratio_checkpoints, 3).tolist()}")
    if anb_ratio < 0.4:
        print("=> ANB is identifying warm pages (Observation 1).")


if __name__ == "__main__":
    main()
