"""Capacity planning: how much fast DDR does a tiered system need?

The paper fixes the DDR allowance at 3GB (~half the footprint).  This
example sweeps the fast-tier capacity for one workload and reports the
M5 speedup over no migration at each point — the curve a capacity
planner would use to size the DDR tier: steep while the hot set does
not fit, flat after.

Usage::

    python examples/capacity_planning.py [benchmark]
"""

import sys

from repro import workloads
from repro.sim import SimConfig, Simulation
from repro.workloads import registry


def speedup_at(bench: str, ddr_pages: int) -> tuple:
    config = SimConfig(
        total_accesses=800_000, chunk_size=16_384, ddr_pages=ddr_pages,
        trace_subsample=64.0, checkpoints=1,
    )
    base = Simulation(workloads.build(bench, seed=1), config,
                      policy="none").run()
    m5 = Simulation(workloads.build(bench, seed=1), config,
                    policy="m5-hpt").run()
    return base.execution_time_s / m5.execution_time_s, m5.nr_pages_ddr


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "roms"
    footprint = workloads.spec_of(bench).footprint_pages
    per_gb = registry.PAGES_PER_GB

    print(f"benchmark: {bench} (footprint {footprint / per_gb:.1f} "
          f"paper-GB)\n")
    print(f"{'DDR (GB)':>9s} {'DDR/foot':>9s} {'speedup':>8s} {'used':>6s}")
    previous = None
    for gb in (0.5, 1, 2, 3, 4, 6):
        ddr_pages = int(gb * per_gb)
        speedup, used = speedup_at(bench, ddr_pages)
        marginal = "" if previous is None else f"  ({speedup - previous:+.2f})"
        print(f"{gb:9.1f} {ddr_pages / footprint:9.2f} {speedup:8.2f} "
              f"{used:6d}{marginal}")
        previous = speedup

    print("\nReading: size the fast tier where the marginal gain "
          "flattens — that is where the hot set fits (§7.2's "
          "conservative-migration argument in capacity form).")


if __name__ == "__main__":
    main()
