"""The Redis tail-latency story (§7.2).

Redis is the paper's latency-sensitive workload: its pages are sparse
(Figure 4) and its page heat is spread wide, so hot-page
identification cost shows up directly in p99 request latency.  The
paper finds ANB helps a little, DAMON *hurts* (it keeps scanning after
migration reaches equilibrium), and M5 with the HWT-driven Nominator
wins because it picks useful pages with virtually no overhead
(Guideline 4).

Usage::

    python examples/redis_tail_latency.py
"""

from repro import workloads
from repro.sim import SimConfig, run_policy


def main() -> None:
    config = SimConfig(total_accesses=1_000_000, chunk_size=16_384,
                       trace_subsample=64.0)

    results = {}
    for policy in ("none", "anb", "damon", "m5-hpt", "m5-hwt"):
        workload = workloads.build("redis", seed=1)
        results[policy] = run_policy(workload, policy, config)

    base = results["none"]
    print("Redis under YCSB-A-style traffic — p99 request latency\n")
    print(f"{'policy':10s} {'p99 (us)':>9s} {'vs none':>9s} "
          f"{'ident. ovh (s)':>15s} {'migrations':>11s}")
    for policy, r in results.items():
        delta = base.p99_latency_us / r.p99_latency_us - 1.0
        print(f"{policy:10s} {r.p99_latency_us:9.2f} {delta:+9.1%} "
              f"{r.overhead_time_s:15.3f} {r.promoted + r.demoted:11d}")

    best = min(results, key=lambda p: results[p].p99_latency_us)
    print(f"\nbest p99: {best}")
    print("note: M5's identification overhead column is ~0 — the "
          "trackers live in the CXL controller, not on the CPU.")


if __name__ == "__main__":
    main()
