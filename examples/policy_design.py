"""Designing a custom page-migration policy on the M5 platform.

M5 is a *platform*: HPT/HWT provide the hot addresses, and M5-manager
exposes Monitor / Nominator / Elector / Promoter so users can "explore
diverse policies" (§5.2).  This example builds a custom policy —
an HPT-driven Nominator with a density filter plus an exponential
fscale Elector — wires it into the simulation engine by hand, and
compares it against the stock HPT-only configuration on roms (a
dense/sparse mixed workload, Guideline 3's target).

Usage::

    python examples/policy_design.py
"""

import numpy as np

from repro import workloads
from repro.core.manager import (
    HPT_DRIVEN,
    Elector,
    M5Manager,
    Nominator,
    exp_fscale,
)
from repro.core.trackers import make_hpt, make_hwt
from repro.memory.migration import MigrationEngine
from repro.sim import M5Options, SimConfig, Simulation, run_policy


def build_custom_simulation(bench: str, config: SimConfig) -> Simulation:
    """A Simulation whose M5 stack is assembled manually."""
    sim = Simulation(workloads.build(bench, seed=1), config, policy="m5-hpt")
    # Replace the stock manager with a hand-built one.
    memory, mglru = sim.memory, sim.mglru
    engine = MigrationEngine(memory, mglru=mglru)
    hpt = make_hpt(k=64, algorithm="cm-sketch", num_counters=32 * 1024)
    hwt = make_hwt(k=128, algorithm="cm-sketch", num_counters=32 * 1024)
    # Detach the stock trackers, attach ours.
    for snoop in list(sim.controller.snoops):
        if snoop is not sim.pac:
            sim.controller.detach(snoop)
    sim.controller.attach(hpt)
    sim.controller.attach(hwt)
    sim._manager = M5Manager(
        memory,
        engine,
        hpt=hpt,
        hwt=hwt,
        # Guideline 3: prefer dense hot pages — require at least 8 of
        # a page's 64 words to be hot before it jumps the queue.
        nominator=Nominator(HPT_DRIVEN, min_hot_words=8),
        # Try the alternative fscale shape from §5.2: y = n * exp(x).
        elector=Elector(fscale=exp_fscale(1.5), f_default=1.0,
                        min_period_s=1e-3, max_period_s=2.0),
        batch_limit=config.migration_batch,
    )
    sim.engine = engine
    return sim


def main() -> None:
    bench = "roms"
    config = SimConfig(total_accesses=1_000_000, chunk_size=16_384,
                       trace_subsample=64.0)

    base = run_policy(workloads.build(bench, seed=1), "none", config)
    stock = run_policy(
        workloads.build(bench, seed=1), "m5-hpt", config,
        m5_options=M5Options(),
    )
    custom_sim = build_custom_simulation(bench, config)
    custom = custom_sim.run()

    print(f"benchmark: {bench}\n")
    print(f"{'policy':22s} {'exec (s)':>9s} {'norm.':>7s} "
          f"{'promoted':>9s} {'demoted':>8s}")
    for name, r in (("no migration", base),
                    ("stock M5 (HPT-only)", stock),
                    ("custom (HPT-driven)", custom)):
        norm = base.execution_time_s / r.execution_time_s
        print(f"{name:22s} {r.execution_time_s:9.1f} {norm:7.2f} "
              f"{r.promoted:9d} {r.demoted:8d}")

    # Peek at the density signal the custom Nominator used.
    manager = custom_sim._manager
    densities = [e.hot_words for e in manager.nominator.hpa.values()]
    if densities:
        print(f"\npending _HPA entries: {len(densities)}, "
              f"mean hot-word density {np.mean(densities):.1f}/64")
    print(f"Elector evaluations: {manager.elector.evaluations}, "
          f"migrations triggered: {manager.elector.migrations_triggered}")


if __name__ == "__main__":
    main()
