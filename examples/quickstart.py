"""Quickstart: run one benchmark under M5 and compare against the
no-migration baseline and a CPU-driven policy.

Usage::

    python examples/quickstart.py [benchmark]

The benchmark name is any of the twelve Table 3 workloads (default:
roms, the paper's showcase for precise migration).
"""

import sys

from repro import workloads
from repro.sim import SimConfig, run_policy


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "roms"
    config = SimConfig(
        total_accesses=1_000_000,
        chunk_size=16_384,
        trace_subsample=64.0,  # stretch simulated wall-clock (see docs)
    )

    print(f"benchmark: {bench} "
          f"({workloads.spec_of(bench).description or 'n/a'})")
    print(f"footprint: {workloads.spec_of(bench).footprint_pages} model pages, "
          f"DDR allowance: {config.ddr_pages} pages\n")

    results = {}
    for policy in ("none", "damon", "m5-hpt"):
        workload = workloads.build(bench, seed=1)
        results[policy] = run_policy(workload, policy, config)

    base = results["none"]
    print(f"{'policy':10s} {'exec (s)':>10s} {'norm.':>7s} {'promoted':>9s} "
          f"{'demoted':>8s} {'overhead (s)':>13s}")
    for policy, r in results.items():
        norm = base.execution_time_s / r.execution_time_s
        print(f"{policy:10s} {r.execution_time_s:10.1f} {norm:7.2f} "
              f"{r.promoted:9d} {r.demoted:8d} {r.overhead_time_s:13.3f}")

    m5 = results["m5-hpt"]
    damon = results["damon"]
    gain = damon.execution_time_s / m5.execution_time_s
    if gain >= 1:
        print(f"\nM5 vs DAMON: {gain - 1:.1%} faster")
    else:
        print(f"\nM5 vs DAMON: {1 - gain:.1%} slower")


if __name__ == "__main__":
    main()
