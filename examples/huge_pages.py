"""Hot huge pages (§8): deriving 2MB migration candidates from HPT.

The paper's benchmarks use 4KB pages, but §8 sketches huge-page
support: aggregate HPT's hot 4KB PFNs into 2MB regions (with an OS
check that the region really is a huge mapping) or run a second HPT at
2MB granularity.  This example does both on a synthetic workload whose
hot set lives inside a few huge regions, and shows why the occupancy
guard matters: a single hot 4KB page must not drag a 2MB promotion.

Usage::

    python examples/huge_pages.py
"""

import numpy as np

from repro.core.hugepage import HugePageAggregator, make_huge_hpt
from repro.core.trackers import make_hpt
from repro.workloads import SyntheticParams, SyntheticWorkload, WorkloadSpec
from repro.workloads.wordmap import WordDensityProfile

#: 2MB regions: 512 x 4KB pages.
PAGES_PER_HUGE = 512


def build_workload(num_huge_regions=8, hot_regions=(2, 5)) -> SyntheticWorkload:
    n = num_huge_regions * PAGES_PER_HUGE
    pop = np.full(n, 1.0)
    for hfn in hot_regions:
        pop[hfn * PAGES_PER_HUGE : (hfn + 1) * PAGES_PER_HUGE] = 60.0
    # One lone hot 4KB page inside an otherwise cold region: the
    # occupancy guard's test case.
    pop[7 * PAGES_PER_HUGE + 11] = 4000.0
    pop /= pop.sum()
    spec = WorkloadSpec(name="huge-demo", footprint_pages=n)
    params = SyntheticParams(
        popularity=pop, word_density=WordDensityProfile.dense()
    )
    return SyntheticWorkload(spec, params, seed=1)


def main() -> None:
    wl = build_workload()
    trace = wl.trace(400_000)

    # Path 1: aggregate a 4KB HPT's output into 2MB candidates.
    hpt = make_hpt(k=64, num_counters=32 * 1024)
    hpt.observe(trace)
    os_allocated = {2, 5, 7}  # region 3 of page-granularity mappings
    aggregator = HugePageAggregator(
        is_huge_allocated=lambda hfn: hfn in os_allocated, min_occupancy=8
    )
    aggregator.update_from_hpt(hpt.query())
    candidates = aggregator.nominate()

    print("Path 1 — HPT(4KB) -> HugePageAggregator")
    print(f"{'2MB region':>10s} {'heat':>10s} {'occupancy':>10s}")
    for entry in candidates:
        print(f"{entry.hfn:>10d} {entry.count:>10d} {entry.occupancy:>9d}/512")
    print(f"rejected (not huge-mapped): {aggregator.rejected_not_huge}")
    lonely = [e for e in candidates if e.hfn == 7]
    print("region 7 (one lone hot 4KB page) nominated: "
          f"{'yes' if lonely else 'no — occupancy guard filtered it'}")

    # Path 2: a second HPT keyed at 2MB granularity.
    huge_hpt = make_huge_hpt(k=4, num_counters=32 * 1024)
    huge_hpt.observe(trace)
    print("\nPath 2 — dedicated 2MB-granularity HPT, top regions:")
    for hfn, count in huge_hpt.query():
        print(f"  region {hfn}: ~{count} accesses")


if __name__ == "__main__":
    main()
